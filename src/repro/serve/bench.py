"""Multi-client load harness over :class:`~repro.serve.service.QueryService`.

The rank-aware-division serving literature (PAPERS.md) frames division
as a *repeated* query over slowly-changing relations; this harness
measures that regime.  It builds a family of stored ``R = Q x S`` table
pairs, gives each simulated client a deterministic script whose table
choices follow a Zipf(``skew``) popularity distribution (a few hot
pairs, a long cold tail -- the shape that makes result caching pay),
mixes in catalog updates at a configurable rate (each one invalidates
the hot pair's cached quotient), and drives everything through the
deterministic scheduler.

Everything reported is **virtual model time**: latency percentiles are
model milliseconds (Table 1 CPU + Table 3 I/O plus scheduling quanta)
and throughput is requests per model second, so two runs of one seed
produce byte-identical reports -- the scheduler's interleaving digest
is exported as the replay witness and CI compares it across two runs.

The headline experiment is :func:`cache_comparison`: the same seed,
script, and tables with the result cache on and off.  The acceptance
bar (ISSUE.md) is a >= 2x throughput win on the skewed mix, recorded
in a schema-v4 ``BENCH_*.json`` via :func:`export_serve_bench`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ReproError, ServeError
from repro.executor.iterator import ExecContext
from repro.faults.injector import FaultInjector, FaultRule
from repro.obs.export import write_bench_json
from repro.obs.metrics import MetricsRegistry
from repro.serve.service import (
    InsertRequest,
    QueryRequest,
    QueryService,
    RequestOutcome,
    ServiceConfig,
)
from repro.storage.catalog import Catalog
from repro.storage.config import StorageConfig
from repro.workloads.synthetic import make_exact_division
from repro.workloads.zipf import zipf_weights

#: Tiny-page storage configuration for smoke runs (CI ``serve-smoke``):
#: small workloads still span many pages, so injected faults find
#: eligible transfers and the buffer pool actually churns.
SMOKE_CONFIG = StorageConfig(
    page_size=512,
    sort_run_page_size=256,
    buffer_size=8 * 512,
    memory_limit=32 * 512,
    sort_buffer_size=4 * 512,
)

#: Quotient keys for harness-inserted rows start here -- far above any
#: key :func:`~repro.workloads.synthetic.make_exact_division` emits, so
#: inserts never collide with generated tuples.
_INSERT_KEY_BASE = 10_000_000


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Deterministic and library-free on purpose: BENCH artifacts must be
    byte-stable across interpreter versions.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ServeError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadConfig:
    """Shape of one load-harness run (everything derives from ``seed``).

    Attributes:
        clients: Simulated client sessions (each is one scheduler task).
        requests_per_client: Script length per client.
        seed: Master seed: scheduler tie-breaking, script draws, table
            contents, and the fault schedule all derive from it.
        skew: Zipf exponent over table-pair popularity (0 = uniform).
        table_pairs: Number of stored ``(dividend, divisor)`` pairs.
        divisor_tuples / quotient_tuples: Per-pair ``R = Q x S`` shape.
        update_fraction: Probability a script entry is an insert into
            the chosen pair's dividend (invalidates its cached results).
        deadline_ms: Per-request deadline in model ms (``None`` = off).
        plan_cache / result_cache: Cache toggles, passed through to
            :class:`~repro.serve.service.ServiceConfig`.
        memory_budget: Admission capacity in bytes (``None`` =
            unbounded -- every grant admits immediately).
        max_waiters: Admission wait-queue bound.
        rows_per_step: Cooperative execution quantum.
        track_oracle: Verify every answer against the serial-order
            algebraic oracle (cheap at harness sizes; the chaos serve
            scenario requires it).
        storage_config: Physical parameters (``None`` = paper defaults;
            :data:`SMOKE_CONFIG` for fault-friendly tiny pages).
        fault_rules: Fault programme attached *after* the fault-free
            bulk load, so experiments start from intact data.
        fault_seed: Injector seed (independent of ``seed`` so one
            workload can be replayed under many fault schedules).
    """

    clients: int = 4
    requests_per_client: int = 8
    seed: int = 0
    skew: float = 1.0
    table_pairs: int = 4
    divisor_tuples: int = 4
    quotient_tuples: int = 16
    update_fraction: float = 0.0
    deadline_ms: float | None = None
    plan_cache: bool = True
    result_cache: bool = True
    memory_budget: int | None = 1 << 20
    max_waiters: int = 16
    rows_per_step: int = 64
    track_oracle: bool = True
    storage_config: StorageConfig | None = None
    fault_rules: tuple[FaultRule, ...] = ()
    fault_seed: int = 0

    def validate(self) -> None:
        if self.clients <= 0:
            raise ServeError("clients must be positive")
        if self.requests_per_client <= 0:
            raise ServeError("requests_per_client must be positive")
        if self.table_pairs <= 0:
            raise ServeError("table_pairs must be positive")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ServeError("update_fraction must be in [0, 1]")


@dataclass
class LoadReport:
    """One harness run's deterministic results (all times virtual ms)."""

    config_seed: int
    clients: int
    requests: int
    ok: int
    timeouts: int
    cancelled: int
    shed: int
    errors: int
    queries_ok: int
    updates_ok: int
    cached_results: int
    plan_cache_hits: int
    fallbacks: int
    oracle_checked: int
    oracle_mismatches: int
    elapsed_ms: float
    throughput_rps: float
    latency_ms: dict
    result_cache: dict
    plan_cache: dict
    admission: dict
    trace_digest: str
    fault_summary: dict = field(default_factory=dict)
    #: Non-:class:`~repro.errors.ReproError` failures that escaped a
    #: session task -- always a bug (the chaos serve scenario treats
    #: any entry here as an invariant violation).
    untyped_failures: list[str] = field(default_factory=list)
    outcomes: list[RequestOutcome] = field(default_factory=list, repr=False)
    metrics: MetricsRegistry | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        """The BENCH v4 ``serve`` block (JSON-stable, no object refs)."""
        return {
            "seed": self.config_seed,
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "shed": self.shed,
            "errors": self.errors,
            "queries_ok": self.queries_ok,
            "updates_ok": self.updates_ok,
            "cached_results": self.cached_results,
            "plan_cache_hits": self.plan_cache_hits,
            "fallbacks": self.fallbacks,
            "oracle_checked": self.oracle_checked,
            "oracle_mismatches": self.oracle_mismatches,
            "elapsed_ms": round(self.elapsed_ms, 4),
            "throughput_rps": round(self.throughput_rps, 4),
            "latency_ms": {k: round(v, 4) for k, v in self.latency_ms.items()},
            "result_cache": dict(self.result_cache),
            "plan_cache": dict(self.plan_cache),
            "admission": dict(self.admission),
            "trace_digest": self.trace_digest,
            "fault_summary": dict(self.fault_summary),
            "untyped_failures": list(self.untyped_failures),
            "request_log": [rec.to_dict() for rec in self.outcomes],
        }

    def summary_line(self) -> str:
        hit = self.result_cache.get("hit_ratio", 0.0)
        return (
            f"serve seed {self.config_seed}: {self.clients} clients x "
            f"{self.requests // max(1, self.clients)} requests -- "
            f"{self.ok}/{self.requests} ok ({self.timeouts} timeout, "
            f"{self.shed} shed, {self.errors} error), "
            f"p50 {self.latency_ms['p50']:.2f} ms, "
            f"p99 {self.latency_ms['p99']:.2f} ms, "
            f"{self.throughput_rps:.1f} req/s (virtual), "
            f"result-cache hit {hit:.0%}, digest {self.trace_digest[:12]}"
        )


def build_tables(
    catalog: Catalog, config: LoadConfig
) -> list[tuple[str, str, int]]:
    """Store ``table_pairs`` cold ``R = Q x S`` pairs; return their
    ``(dividend_name, divisor_name, first_divisor_value)`` triples.

    Pair ``i``'s contents derive from ``seed + i`` so distinct pairs
    hold distinct (but deterministic) data; the first divisor value is
    kept so harness inserts can append well-typed partial members.
    """
    pairs: list[tuple[str, str, int]] = []
    for i in range(config.table_pairs):
        dividend, divisor = make_exact_division(
            config.divisor_tuples,
            config.quotient_tuples,
            seed=config.seed + i,
        )
        dividend_name = f"dividend_{i}"
        divisor_name = f"divisor_{i}"
        catalog.store(dividend, dividend_name, cold=True)
        catalog.store(divisor, divisor_name, cold=True)
        pairs.append((dividend_name, divisor_name, divisor.rows[0][0]))
    return pairs


def build_scripts(
    config: LoadConfig, pairs: list[tuple[str, str, int]]
) -> dict[str, list]:
    """Each client's deterministic request script.

    Table choices are drawn Zipf(``skew``) over the pairs; with
    probability ``update_fraction`` an entry becomes an insert of one
    fresh partial-member row into the chosen dividend (a version bump
    that invalidates that pair's cached plan and result).  All draws
    come from one ``random.Random(seed)`` stream, so the script set is
    a pure function of the config.
    """
    rng = random.Random(config.seed ^ 0x5EEDBA5E)
    weights = zipf_weights(len(pairs), config.skew)
    indices = list(range(len(pairs)))
    next_key = _INSERT_KEY_BASE
    scripts: dict[str, list] = {}
    for c in range(config.clients):
        client = f"client{c:02d}"
        script: list = []
        for _ in range(config.requests_per_client):
            pair = pairs[rng.choices(indices, weights=weights, k=1)[0]]
            dividend_name, divisor_name, divisor_value = pair
            if rng.random() < config.update_fraction:
                script.append(
                    InsertRequest(
                        dividend_name, ((next_key, divisor_value),)
                    )
                )
                next_key += 1
            else:
                script.append(QueryRequest(dividend_name, divisor_name))
        scripts[client] = script
    return scripts


def run_load(
    config: LoadConfig, metrics: MetricsRegistry | None = None
) -> LoadReport:
    """Run one load experiment; returns its :class:`LoadReport`.

    Deterministic end to end: tables, scripts, scheduler interleaving,
    and (when enabled) the fault schedule all derive from the config's
    seeds, and every duration is virtual.  The service's post-drain
    leak audit runs (grants, locks, fixed frames, pool bytes); a dirty
    drain raises :class:`~repro.errors.ServeError` rather than
    reporting numbers measured on a leaking stack.
    """
    config.validate()
    metrics = metrics if metrics is not None else MetricsRegistry()
    ctx = ExecContext(
        config=config.storage_config, memory_budget=config.memory_budget
    )
    try:
        catalog = Catalog(ctx.pool, ctx.data_disk)
        pairs = build_tables(catalog, config)
        scripts = build_scripts(config, pairs)

        # Snapshot the shadow-oracle rows while the stack is still
        # fault-free: seeding is harness setup, and a corrupt-read
        # fault firing during this scan would kill the experiment
        # before any request ran.
        shadow_rows: dict[str, list] = {}
        if config.track_oracle:
            for dividend_name, divisor_name, _ in pairs:
                for name in (dividend_name, divisor_name):
                    shadow_rows[name] = [
                        row for _, row in catalog.get(name).scan_rows()
                    ]

        injector = None
        if config.fault_rules:
            # Setup above was fault-free: experiments start from intact
            # stored data, exactly like the chaos harness.
            injector = FaultInjector(
                list(config.fault_rules), seed=config.fault_seed
            )
            ctx.attach_fault_injector(injector)

        service = QueryService(
            ctx,
            catalog,
            ServiceConfig(
                seed=config.seed,
                rows_per_step=config.rows_per_step,
                max_waiters=config.max_waiters,
                plan_cache=config.plan_cache,
                result_cache=config.result_cache,
                default_deadline_ms=config.deadline_ms,
                track_oracle=config.track_oracle,
            ),
            metrics=metrics,
        )
        for name, rows in shadow_rows.items():
            service.seed_shadow(name, rows)
        for client, script in scripts.items():
            service.submit_script(client, script)
        outcomes = service.run(check_leaks=True)
        if injector is not None:
            ctx.attach_fault_injector(None)
        return _build_report(config, service, outcomes, injector, metrics)
    finally:
        ctx.close()


def _cache_stats_dict(cache) -> dict:
    if cache is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "invalidations": cache.stats.invalidations,
        "evictions": cache.stats.evictions,
        "hit_ratio": round(cache.stats.hit_ratio, 4),
        "entries": len(cache),
    }


def _build_report(
    config: LoadConfig,
    service: QueryService,
    outcomes: list[RequestOutcome],
    injector,
    metrics: MetricsRegistry,
) -> LoadReport:
    ok = [r for r in outcomes if r.outcome == "ok"]
    latencies = [r.latency_ms for r in ok if r.latency_ms is not None]
    elapsed_ms = service.clock.now_ms
    checked = [r for r in outcomes if r.oracle_ok is not None]
    admission = service.admission
    untyped = [
        f"{task.name}: {type(task.error).__name__}: {task.error}"
        for task in service.scheduler.tasks
        if task.error is not None and not isinstance(task.error, ReproError)
    ]
    report = LoadReport(
        config_seed=config.seed,
        clients=config.clients,
        requests=len(outcomes),
        ok=len(ok),
        timeouts=sum(1 for r in outcomes if r.outcome == "timeout"),
        cancelled=sum(1 for r in outcomes if r.outcome == "cancelled"),
        shed=sum(1 for r in outcomes if r.outcome == "shed"),
        errors=sum(1 for r in outcomes if r.outcome == "error"),
        queries_ok=sum(1 for r in ok if r.kind == "query"),
        updates_ok=sum(1 for r in ok if r.kind in ("insert", "delete")),
        cached_results=sum(1 for r in outcomes if r.cached),
        plan_cache_hits=sum(1 for r in outcomes if r.plan_cached),
        fallbacks=sum(1 for r in outcomes if r.fell_back),
        oracle_checked=len(checked),
        oracle_mismatches=sum(1 for r in checked if not r.oracle_ok),
        elapsed_ms=elapsed_ms,
        throughput_rps=(
            len(ok) / (elapsed_ms / 1000.0) if elapsed_ms > 0 else 0.0
        ),
        latency_ms={
            "p50": percentile(latencies, 50),
            "p95": percentile(latencies, 95),
            "p99": percentile(latencies, 99),
            "max": max(latencies) if latencies else 0.0,
            "mean": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
        },
        result_cache=_cache_stats_dict(service.result_cache),
        plan_cache=_cache_stats_dict(service.plan_cache),
        admission={
            "admitted": admission.admitted_total,
            "waited": admission.waited_total,
            "shed": admission.shed_total,
            "capacity_bytes": admission.capacity_bytes,
        },
        trace_digest=service.scheduler.trace_digest(),
        fault_summary=injector.summary() if injector is not None else {},
        untyped_failures=untyped,
        outcomes=outcomes,
        metrics=metrics,
    )
    return report


def cache_comparison(
    config: LoadConfig,
) -> tuple[LoadReport, LoadReport, float]:
    """The headline experiment: same seed/scripts, result cache on vs off.

    Returns ``(report_on, report_off, speedup)`` where ``speedup`` is
    the virtual-throughput ratio on/off.  The ISSUE acceptance bar is
    ``speedup >= 2`` on a Zipf-skewed read-mostly mix.
    """
    report_on = run_load(replace(config, result_cache=True))
    report_off = run_load(replace(config, result_cache=False, plan_cache=False))
    if report_off.throughput_rps > 0:
        speedup = report_on.throughput_rps / report_off.throughput_rps
    else:
        speedup = float("inf") if report_on.throughput_rps > 0 else 0.0
    return report_on, report_off, speedup


def export_serve_bench(
    directory: Path | str,
    name: str,
    report: LoadReport,
    baseline: LoadReport | None = None,
    created_unix: float | None = None,
) -> Path:
    """Write one schema-v4 ``BENCH_<name>.json`` serving artifact.

    ``metrics`` carries the flat scalars the perf trajectory compares
    (throughput, percentiles, hit ratio); the full report -- including
    the interleaving ``trace_digest`` replay witness and per-request
    log -- rides in the v4 ``serve`` block.  With ``baseline`` (a
    cache-off run) the cache speedup is recorded too.
    """
    metrics = {
        "throughput_rps": report.throughput_rps,
        "latency_p50_ms": report.latency_ms["p50"],
        "latency_p95_ms": report.latency_ms["p95"],
        "latency_p99_ms": report.latency_ms["p99"],
        "elapsed_ms": report.elapsed_ms,
        "ok": report.ok,
        "requests": report.requests,
        "result_cache_hit_ratio": report.result_cache.get("hit_ratio", 0.0),
    }
    serve_block = report.to_dict()
    if baseline is not None:
        metrics["baseline_throughput_rps"] = baseline.throughput_rps
        if baseline.throughput_rps > 0:
            metrics["cache_speedup"] = (
                report.throughput_rps / baseline.throughput_rps
            )
        serve_block["baseline"] = {
            "throughput_rps": round(baseline.throughput_rps, 4),
            "elapsed_ms": round(baseline.elapsed_ms, 4),
            "latency_ms": {
                k: round(v, 4) for k, v in baseline.latency_ms.items()
            },
            "trace_digest": baseline.trace_digest,
        }
    return write_bench_json(
        directory,
        name,
        metrics,
        created_unix=created_unix,
        serve=serve_block,
    )
