"""repro.serve -- a concurrent query service over the storage engine.

The paper benchmarks one division at a time; this package serves many
concurrently -- deterministically.  Four cooperating pieces:

* :mod:`repro.serve.scheduler` -- cooperative generator-stepped tasks
  in virtual model-ms time, seeded interleaving, deadline/cancel via
  typed errors thrown into the task,
* :mod:`repro.serve.admission` -- memory grants reserved against the
  :class:`~repro.storage.memory.MemoryPool` budget *before* dispatch,
  bounded wait queue, load shedding,
* :mod:`repro.serve.cache` -- plan and result caches invalidated by
  monotonic relation versions (staleness impossible by construction),
* :mod:`repro.serve.service` -- the :class:`QueryService` front door:
  table locks, oracle shadows, leak auditing,
* :mod:`repro.serve.bench` -- the multi-client load harness behind
  ``repro serve``.
"""

from repro.serve.admission import (
    AdmissionController,
    MemoryGrant,
    estimate_grant_bytes,
)
from repro.serve.cache import (
    CachedDecision,
    CachedResult,
    CacheStats,
    VersionedCache,
    plan_key,
    stored_table_names,
)
from repro.serve.scheduler import (
    CooperativeScheduler,
    Task,
    TaskState,
    VirtualClock,
    Wait,
)
from repro.serve.service import (
    DeleteRequest,
    InsertRequest,
    QueryRequest,
    QueryService,
    RequestOutcome,
    ServeResult,
    ServiceConfig,
    TableLockManager,
)

__all__ = [
    "AdmissionController",
    "MemoryGrant",
    "estimate_grant_bytes",
    "CachedDecision",
    "CachedResult",
    "CacheStats",
    "VersionedCache",
    "plan_key",
    "stored_table_names",
    "CooperativeScheduler",
    "Task",
    "TaskState",
    "VirtualClock",
    "Wait",
    "DeleteRequest",
    "InsertRequest",
    "QueryRequest",
    "QueryService",
    "RequestOutcome",
    "ServeResult",
    "ServiceConfig",
    "TableLockManager",
]
