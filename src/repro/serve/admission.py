"""Admission control: memory grants before dispatch, not overflow mid-build.

The paper's memory-size analysis (Section 4.5) prices each algorithm's
hash-table footprint; under *concurrent* load those footprints contend
for one :class:`~repro.storage.memory.MemoryPool` budget.  Without
admission control, the failure mode is a
:class:`~repro.errors.MemoryPoolError` in the middle of building a
divisor table -- work already paid for, thrown away.  The controller
moves that decision to the front door:

* each query computes a **grant estimate** from the planner's existing
  cardinality estimates (:func:`estimate_grant_bytes` prices the same
  chain elements, bucket headers, and bit maps the operators charge the
  pool for),
* a grant is **reserved** against the pool budget before the query
  dispatches; queries whose grants don't fit wait in a bounded FIFO
  queue (fair, deterministic -- ticket order is submission order),
* when the wait queue is full, the service **sheds load** with a typed
  :class:`~repro.errors.ServiceOverloadError` at submit time --
  backpressure, not mid-build failure,
* grants are released in the task's ``finally`` block, so timeouts and
  cancellations cannot leak reserved bytes (the chaos suite asserts
  :attr:`AdmissionController.outstanding_bytes` drains to zero).

Grants are *reservations in the controller's ledger*, not pool
allocations: operators keep charging the pool exactly as before (the
single-query path is untouched), and the controller merely guarantees
the sum of concurrently admitted estimates respects the budget.
Estimates can be wrong -- an underestimate may still overflow, which
the plan layer's partitioned fallback absorbs, and that event is
counted so the estimator can be judged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, Optional

from repro.costmodel.advisor import DivisionEstimates
from repro.errors import ServeError, ServiceOverloadError
from repro.serve.scheduler import VirtualClock, Wait
from repro.storage.memory import (
    BUCKET_HEADER_BYTES,
    CHAIN_ELEMENT_BYTES,
    MemoryPool,
)

#: Bytes charged per quotient-candidate bit map, rounded up to whole
#: bytes per divisor tuple bit (hash-division, Section 3.2).
BITMAP_HEADER_BYTES = 16

#: Safety factor over the raw footprint estimate: chain slack, the
#: quotient table's load-factor headroom.
GRANT_SAFETY_FACTOR = 1.25


def estimate_grant_bytes(estimates: DivisionEstimates) -> int:
    """Price one division's in-memory footprint from plan estimates.

    Mirrors what the operators will charge the pool: a divisor table
    (chain element + bucket header per divisor tuple), a quotient table
    (chain element + bucket header per expected quotient candidate),
    and one bit map of ``divisor_tuples`` bits per candidate.  The
    aggregation strategies need strictly less (a counter instead of a
    bit map), so one conservative formula serves every strategy.
    """
    divisor = max(0, estimates.divisor_tuples)
    quotient = max(1, estimates.estimated_quotient)
    bitmap_bytes = BITMAP_HEADER_BYTES + (divisor + 7) // 8
    raw = (
        divisor * (CHAIN_ELEMENT_BYTES + BUCKET_HEADER_BYTES)
        + quotient * (CHAIN_ELEMENT_BYTES + BUCKET_HEADER_BYTES + bitmap_bytes)
    )
    return int(raw * GRANT_SAFETY_FACTOR) + 1


@dataclass
class MemoryGrant:
    """A live admission reservation (release exactly once)."""

    ticket_id: int
    nbytes: int
    tag: str
    released: bool = False


@dataclass
class _Ticket:
    ticket_id: int
    nbytes: int
    tag: str
    enqueued_ms: float
    granted: Optional[MemoryGrant] = None
    abandoned: bool = False


class AdmissionController:
    """Grant ledger + bounded FIFO wait queue over one memory pool.

    Args:
        pool: The execution context's memory pool; its ``budget`` is
            the grant capacity (``None`` = unbounded, every grant
            admits immediately).
        clock: The scheduler's virtual clock, for grant-wait latency.
        max_waiters: Bound on the wait queue; one more waiter sheds.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving the ``repro_serve_admission_*`` families and the
            ``repro_serve_grant_wait_ms`` histogram.
    """

    def __init__(
        self,
        pool: MemoryPool,
        clock: VirtualClock,
        max_waiters: int = 16,
        metrics=None,
    ) -> None:
        if max_waiters < 0:
            raise ServeError("max_waiters must be >= 0")
        self.pool = pool
        self.clock = clock
        self.max_waiters = max_waiters
        self.metrics = metrics
        self.granted_bytes = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.waited_total = 0
        self._queue: deque[_Ticket] = deque()
        self._next_ticket = 0

    # -- capacity ------------------------------------------------------

    @property
    def capacity_bytes(self) -> int | None:
        """Grant capacity; ``None`` when the pool is unbounded."""
        return self.pool.budget

    @property
    def outstanding_bytes(self) -> int:
        """Bytes currently reserved by live grants."""
        return self.granted_bytes

    @property
    def queue_depth(self) -> int:
        """Tickets currently waiting for a grant."""
        return sum(1 for t in self._queue if not t.abandoned)

    def _fits(self, nbytes: int) -> bool:
        capacity = self.capacity_bytes
        return capacity is None or self.granted_bytes + nbytes <= capacity

    def _clamp(self, nbytes: int) -> int:
        """Cap a request at total capacity so oversized queries are
        admitted (alone) and degrade via the partitioned fallback,
        instead of waiting forever for a grant that can never fit."""
        capacity = self.capacity_bytes
        if capacity is not None and nbytes > capacity:
            return capacity
        return nbytes

    # -- the request protocol ------------------------------------------

    def enqueue(self, nbytes: int, tag: str = "query") -> _Ticket:
        """Join the wait queue (possibly granted immediately on poll).

        Raises:
            ServiceOverloadError: When the queue is full -- the
                load-shedding backpressure signal, raised *before* any
                work is done on the request.
        """
        if nbytes < 0:
            raise ServeError(f"grant bytes must be >= 0, got {nbytes}")
        # A request that would be granted on its first poll is not a
        # *waiter*; the bound applies to tickets that must actually wait
        # (so max_waiters=0 means "admit or shed", never "shed all").
        immediate = self.queue_depth == 0 and self._fits(self._clamp(nbytes))
        if not immediate and self.queue_depth >= self.max_waiters:
            self.shed_total += 1
            if self.metrics is not None:
                self.metrics.counter("repro_serve_admission_shed_total").inc()
            raise ServiceOverloadError(
                f"admission queue full ({self.max_waiters} waiters); "
                f"request for {nbytes} bytes shed"
            )
        ticket = _Ticket(
            ticket_id=self._next_ticket,
            nbytes=self._clamp(nbytes),
            tag=tag,
            enqueued_ms=self.clock.now_ms,
        )
        self._next_ticket += 1
        self._queue.append(ticket)
        return ticket

    def poll(self, ticket: _Ticket) -> MemoryGrant | None:
        """Try to convert a ticket into a grant; FIFO-fair.

        A ticket is granted only when every ticket ahead of it has been
        granted or abandoned (no overtaking -- small queries cannot
        starve a large one) *and* its bytes fit the remaining capacity.
        """
        if ticket.granted is not None:
            return ticket.granted
        self._drop_abandoned()
        if not self._queue or self._queue[0] is not ticket:
            return None
        if not self._fits(ticket.nbytes):
            return None
        self._queue.popleft()
        grant = MemoryGrant(ticket.ticket_id, ticket.nbytes, ticket.tag)
        ticket.granted = grant
        self.granted_bytes += grant.nbytes
        self.admitted_total += 1
        wait_ms = self.clock.now_ms - ticket.enqueued_ms
        if wait_ms > 0:
            self.waited_total += 1
        if self.metrics is not None:
            self.metrics.counter("repro_serve_admission_admitted_total").inc()
            self.metrics.histogram("repro_serve_grant_wait_ms").observe(wait_ms)
            self.metrics.gauge("repro_serve_granted_bytes").set(self.granted_bytes)
        return grant

    def abandon(self, ticket: _Ticket) -> None:
        """Withdraw a waiting ticket (timeout/cancel before grant)."""
        if ticket.granted is None:
            ticket.abandoned = True
            self._drop_abandoned()

    def release(self, grant: MemoryGrant) -> None:
        """Return a grant's bytes to the ledger (idempotent)."""
        if grant.released:
            return
        grant.released = True
        self.granted_bytes -= grant.nbytes
        if self.granted_bytes < 0:  # pragma: no cover - defensive
            raise ServeError("grant ledger went negative")
        if self.metrics is not None:
            self.metrics.gauge("repro_serve_granted_bytes").set(self.granted_bytes)

    def _drop_abandoned(self) -> None:
        while self._queue and self._queue[0].abandoned:
            self._queue.popleft()

    # -- task-side helper ----------------------------------------------

    def wait_for_grant(
        self, nbytes: int, tag: str = "query"
    ) -> Generator[Wait, None, MemoryGrant]:
        """Task-side protocol: ``grant = yield from ctrl.wait_for_grant(n)``.

        Parks the calling task (via :class:`~repro.serve.scheduler.Wait`)
        until the ticket reaches the queue head and fits.  If a timeout
        or cancellation is thrown in while parked, the ticket is
        abandoned before the error propagates -- the queue cannot jam
        on dead waiters.
        """
        ticket = self.enqueue(nbytes, tag)
        try:
            while True:
                grant = self.poll(ticket)
                if grant is not None:
                    return grant
                yield Wait(
                    "grant",
                    lambda: (
                        bool(self._queue)
                        and self._queue[0] is ticket
                        and self._fits(ticket.nbytes)
                    ),
                )
        except BaseException:
            self.abandon(ticket)
            raise
