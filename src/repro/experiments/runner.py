"""Plan builder and meter plumbing for the experimental comparison.

:func:`run_strategy` is the unit of Table 4: store the inputs cold on
the simulated disk, build the named strategy's plan over file scans,
drain it, and report model CPU milliseconds (Table 1 weights applied to
the operation counters) plus model I/O milliseconds (Table 3 weights
applied to the disk statistics) -- the same two-meter methodology the
paper used, with the abstract-unit meter standing in for ``getrusage``
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.obs.profile import QueryProfile, build_profile
from repro.obs.span import Clock, MONOTONIC_CLOCK
from repro.executor.scan import StoredRelationScan
from repro.plan.physical import build_division_operator
from repro.relalg.relation import Relation
from repro.storage.catalog import Catalog

STRATEGIES: tuple[str, ...] = (
    "naive",
    "sort-agg no join",
    "sort-agg with join",
    "hash-agg no join",
    "hash-agg with join",
    "hash-division",
)
"""Strategy names, matching the Table 2/Table 4 column order."""


@dataclass
class DivisionRun:
    """Measured outcome of one strategy on one workload."""

    strategy: str
    dividend_tuples: int
    divisor_tuples: int
    quotient_tuples: int
    cpu_ms: float
    io_ms: float
    wall_seconds: float
    io_detail: dict = field(default_factory=dict)
    #: EXPLAIN ANALYZE operator tree, present when the run's context
    #: carried a recording tracer (see ``repro.obs``).
    profile: QueryProfile | None = None

    @property
    def total_ms(self) -> float:
        """Model CPU + I/O milliseconds -- the Table 4 cell value."""
        return self.cpu_ms + self.io_ms


def build_strategy_plan(
    strategy: str,
    dividend_scan: QueryIterator,
    divisor_scan: QueryIterator,
    expected_divisor: int,
    expected_quotient: int,
    duplicate_free_inputs: bool = True,
) -> QueryIterator:
    """Build the operator tree for one named strategy.

    ``duplicate_free_inputs=True`` reproduces the paper's analyzed
    configuration (no explicit duplicate-elimination steps); pass False
    for workloads with duplicates, which inserts the preprocessing each
    strategy needs.

    This is a thin adapter over the planner layer's
    :func:`repro.plan.physical.build_division_operator` -- the single
    strategy-name -> operator-tree factory shared with compiled
    ``contains`` queries -- kept for the experiment harness's
    vocabulary (Table 4 strategy names, duplicate-free default).
    """
    if strategy not in STRATEGIES:
        raise ExperimentError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    eliminate = not duplicate_free_inputs
    return build_division_operator(
        strategy,
        dividend_scan,
        divisor_scan,
        expected_divisor=expected_divisor,
        expected_quotient=expected_quotient,
        eliminate_duplicates=eliminate,
        distinct_sorts=eliminate,
    )


def run_strategy(
    strategy: str,
    ctx: ExecContext,
    catalog: Catalog,
    dividend_name: str,
    divisor_name: str,
    expected_quotient: int = 0,
    duplicate_free_inputs: bool = True,
    units: CostUnits = PAPER_UNITS,
    clock: Clock | None = None,
) -> DivisionRun:
    """Run one strategy over stored relations and meter it.

    The context's meters are snapshotted around the run, so several
    strategies can share one context (and its buffer pool state must be
    considered: for cold runs, store the relations with ``cold=True``
    immediately before each run, or use a fresh context per run as
    :func:`run_strategy_on_relations` does).

    Wall time comes from ``clock`` (default: the real monotonic clock);
    inject a :class:`repro.obs.span.FakeClock` for deterministic tests.
    When ``ctx`` carries a recording tracer, the returned run also
    carries the EXPLAIN ANALYZE :class:`~repro.obs.profile.QueryProfile`.
    """
    clock = clock or MONOTONIC_CLOCK
    stored_dividend = catalog.get(dividend_name)
    stored_divisor = catalog.get(divisor_name)
    cpu_before = ctx.cpu.snapshot()
    io_before = ctx.io_stats.snapshot()
    started = clock.now()
    plan = build_strategy_plan(
        strategy,
        StoredRelationScan(ctx, stored_dividend),
        StoredRelationScan(ctx, stored_divisor),
        expected_divisor=stored_divisor.record_count,
        expected_quotient=expected_quotient,
        duplicate_free_inputs=duplicate_free_inputs,
    )
    quotient = run_to_relation(plan, name="quotient")
    wall = clock.now() - started
    cpu_delta = ctx.cpu.delta_since(cpu_before)
    io_ms = ctx.io_stats.cost_since(io_before)
    profile = None
    if ctx.tracer.enabled:
        profile = build_profile(
            ctx.tracer, ctx, units=units, cpu=cpu_delta, io_ms=io_ms, wall_s=wall
        )
        metrics = ctx.tracer.metrics
        if metrics is not None:
            from repro.obs.metrics import absorb_cpu_counters

            absorb_cpu_counters(metrics, cpu_delta, strategy=strategy)
            metrics.gauge("repro_run_cpu_model_ms", strategy=strategy).set(
                units.cpu_cost_ms(cpu_delta)
            )
            metrics.gauge("repro_run_io_model_ms", strategy=strategy).set(io_ms)
            metrics.gauge("repro_run_wall_seconds", strategy=strategy).set(wall)
            if ctx.io_trace.enabled:
                from repro.obs.iotrace import absorb_io_event_log

                absorb_io_event_log(metrics, ctx.io_trace, strategy=strategy)
    return DivisionRun(
        strategy=strategy,
        dividend_tuples=stored_dividend.record_count,
        divisor_tuples=stored_divisor.record_count,
        quotient_tuples=len(quotient),
        cpu_ms=units.cpu_cost_ms(cpu_delta),
        io_ms=io_ms,
        wall_seconds=wall,
        io_detail={
            name: counters.transfers
            for name, counters in ctx.io_stats.devices.items()
        },
        profile=profile,
    )


def run_strategy_on_relations(
    strategy: str,
    dividend: Relation,
    divisor: Relation,
    expected_quotient: int = 0,
    duplicate_free_inputs: bool = True,
    memory_budget: int | None = None,
    units: CostUnits = PAPER_UNITS,
    clock: Clock | None = None,
    tracer=None,
    io_trace=None,
) -> DivisionRun:
    """Run one strategy on in-memory relations via a fresh cold context.

    The relations are stored on a fresh simulated disk (cold: all
    buffered pages dropped), then the strategy runs over file scans --
    the exact setup of the paper's experiments.  Pass a recording
    ``tracer`` (:class:`repro.obs.span.Tracer`) to get the run's
    EXPLAIN ANALYZE profile on ``DivisionRun.profile``; pass an
    ``io_trace`` (:class:`repro.obs.iotrace.IoEventLog`) to record one
    event per physical page transfer, with the log cleared after setup
    so its replayed cost matches ``DivisionRun.io_ms`` exactly (the
    :func:`repro.obs.iotrace.verify_conservation` check).
    """
    ctx = ExecContext(memory_budget=memory_budget, tracer=tracer, io_trace=io_trace)
    catalog = Catalog(ctx.pool, ctx.data_disk)
    catalog.store(dividend, name="dividend", cold=True)
    catalog.store(divisor, name="divisor", cold=True)
    # Storing is setup, not the measured experiment: reset the meters.
    ctx.reset_meters()
    return run_strategy(
        strategy,
        ctx,
        catalog,
        "dividend",
        "divisor",
        expected_quotient=expected_quotient,
        duplicate_free_inputs=duplicate_free_inputs,
        units=units,
        clock=clock,
    )
