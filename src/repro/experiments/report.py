"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned and floats shown with no decimals above
    100 (matching the paper's millisecond tables) and two decimals
    below.
    """
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def render_comparison(
    headers: Sequence[str],
    measured_rows: Sequence[Sequence[object]],
    reference_rows: Sequence[Sequence[object]],
    measured_label: str = "measured",
    reference_label: str = "paper",
    title: str = "",
) -> str:
    """Render measured-vs-reference rows interleaved, for the
    EXPERIMENTS.md style paper-vs-measured tables."""
    rows: list[list[object]] = []
    for measured, reference in zip(measured_rows, reference_rows):
        rows.append([measured_label, *measured])
        rows.append([reference_label, *reference])
    return render_table(["source", *headers], rows, title=title)
