"""Experiment harness: regenerate every table of the paper.

* :mod:`repro.experiments.table1` -- Table 1, the analytical cost units,
* :mod:`repro.experiments.table2` -- Table 2, the analytical comparison,
* :mod:`repro.experiments.table3` -- Table 3, the experimental I/O
  weights,
* :mod:`repro.experiments.table4` -- Table 4, the experimental
  comparison run on the simulated storage stack,
* :mod:`repro.experiments.runner` -- the per-strategy plan builder and
  meter plumbing shared by Table 4 and the ablation benchmarks,
* :mod:`repro.experiments.report` -- plain-text table rendering.

Every ``table*`` module exposes ``rows()`` returning structured data
and ``render()`` returning the formatted table; the benchmarks print
the rendered form so ``pytest benchmarks/ --benchmark-only`` reproduces
the paper's evaluation section end to end.
"""

from repro.experiments.runner import (
    STRATEGIES,
    DivisionRun,
    run_strategy,
    run_strategy_on_relations,
)
from repro.experiments import report, table1, table2, table3, table4

__all__ = [
    "STRATEGIES",
    "DivisionRun",
    "run_strategy",
    "run_strategy_on_relations",
    "report",
    "table1",
    "table2",
    "table3",
    "table4",
]
