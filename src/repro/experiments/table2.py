"""Table 2: the analytical cost of division.

Recomputes all nine (|S|, |Q|) size points with the Section 4 formulas
and reports them next to the paper's printed figures.  The formulas
reproduce every printed cell to rounding (worst deviation < 0.02%);
see EXPERIMENTS.md for the two reverse-engineered details (merge-pass
count, composition of the sort-aggregation-with-join column).
"""

from __future__ import annotations

from repro.costmodel.scenarios import TABLE2_COLUMNS, table2_grid
from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.experiments.report import render_table


def rows(units: CostUnits = PAPER_UNITS) -> list[dict]:
    """One dict per size point: sizes, computed ms, paper ms, deviation."""
    out = []
    for entry in table2_grid(units):
        computed = {
            column: entry["costs"][column].total_ms for column in TABLE2_COLUMNS
        }
        deviation = {
            column: abs(computed[column] - entry["paper"][column])
            / entry["paper"][column]
            for column in TABLE2_COLUMNS
        }
        out.append(
            {
                "S": entry["S"],
                "Q": entry["Q"],
                "computed": computed,
                "paper": entry["paper"],
                "deviation": deviation,
            }
        )
    return out


def max_deviation(units: CostUnits = PAPER_UNITS) -> float:
    """Worst relative deviation from the printed table (fraction)."""
    return max(
        value for entry in rows(units) for value in entry["deviation"].values()
    )


def render(units: CostUnits = PAPER_UNITS) -> str:
    """Formatted Table 2 with the paper's figures interleaved."""
    table_rows = []
    for entry in rows(units):
        table_rows.append(
            [
                entry["S"],
                entry["Q"],
                "computed",
                *[round(entry["computed"][c]) for c in TABLE2_COLUMNS],
            ]
        )
        table_rows.append(
            ["", "", "paper", *[entry["paper"][c] for c in TABLE2_COLUMNS]]
        )
    return render_table(
        ("|S|", "|Q|", "source", *TABLE2_COLUMNS),
        table_rows,
        title="Table 2. Analytical Cost of Division (ms).",
    )
