"""Table 1: the analytical cost units.

A constants table, regenerated from :class:`repro.costmodel.units.CostUnits`
so the experiment index covers every table of the paper.
"""

from __future__ import annotations

from repro.costmodel.units import PAPER_UNITS, CostUnits
from repro.experiments.report import render_table


def rows(units: CostUnits = PAPER_UNITS) -> list[tuple[str, float, str]]:
    """Rows of Table 1: (unit, ms, description)."""
    return units.as_table()


def render(units: CostUnits = PAPER_UNITS) -> str:
    """Formatted Table 1."""
    return render_table(
        ("Unit", "ms", "Description"),
        rows(units),
        title="Table 1. Cost Units.",
    )
