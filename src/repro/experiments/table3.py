"""Table 3: the experimental I/O cost weights.

The weights the simulated disk statistics are priced with; regenerated
from :class:`repro.storage.stats.IoWeights` so a change to the weights
is visible in the experiment output.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.storage.stats import IoWeights


def rows(weights: IoWeights | None = None) -> list[tuple[float, str]]:
    """Rows of Table 3: (ms, cost description)."""
    w = weights or IoWeights()
    return [
        (w.seek_ms, "Physical seek on device"),
        (w.latency_ms_per_transfer, "Rotational latency per transfer"),
        (w.transfer_ms_per_kib, "Transfer time per KByte"),
        (w.cpu_ms_per_transfer, "CPU cost per transfer"),
    ]


def render(weights: IoWeights | None = None) -> str:
    """Formatted Table 3."""
    return render_table(
        ("ms", "Cost"),
        rows(weights),
        title="Table 3. Experimental I/O Cost Weights.",
    )
