"""Table 4: the experimental comparison, on the simulated stack.

For each of the paper's nine (|S|, |Q|) size points and six strategies,
generates the ``R = Q × S`` workload, stores it cold on the simulated
disk, runs the strategy's real operator pipeline, and reports model
milliseconds (Table 1 CPU weights + Table 3 I/O weights).

The absolute numbers are not the paper's MicroVAX numbers and are not
meant to be; what must reproduce -- and is asserted by the tests and
summarized in EXPERIMENTS.md -- is the *shape*:

* the strategy ranking at every size point (hash-based beats
  sort-based; a preceding semi-join makes aggregation inferior to the
  direct algorithms),
* hash-division close to hash-aggregation-without-join (paper: ~10%
  slower) and clearly ahead of everything that sorts or joins,
* the growing factor between fastest and slowest as sizes grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.scenarios import TABLE2_SIZES
from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.experiments.report import render_table
from repro.experiments.runner import STRATEGIES, DivisionRun, run_strategy_on_relations
from repro.workloads.synthetic import make_exact_division

#: The figures printed in the paper's Table 4 (MicroVAX II
#: milliseconds), keyed by (|S|, |Q|), column order = STRATEGIES.
PAPER_TABLE4: dict[tuple[int, int], tuple[int, ...]] = {
    (25, 25): (978, 648, 1288, 438, 876, 482),
    (25, 100): (4230, 2650, 5000, 1130, 2260, 1243),
    (25, 400): (24356, 10175, 27987, 3850, 7700, 4235),
    (100, 25): (3710, 2500, 5120, 1100, 2200, 1210),
    (100, 100): (25305, 10847, 28393, 3750, 7500, 4125),
    (100, 400): (108049, 42643, 115678, 14226, 28452, 15649),
    (400, 25): (25686, 12286, 29573, 3920, 7840, 4312),
    (400, 100): (108279, 47937, 120412, 14378, 28756, 15816),
    (400, 400): (448470, 190745, 490765, 56094, 112188, 61703),
}
"""Table 4 reference figures.  The available scan of the paper
preserves only four numeric columns per row; per the paper's own text
those are naive, sort-agg no join, sort-agg with join ("490,765ms vs
190,745ms" for |S|=|Q|=400), and hash-agg no join (the fastest:
"1288ms vs 4[23]8ms").  The two missing columns are reconstructed from
the paper's stated relationships -- hash-agg *with* join at the
analytical 2x of the no-join column, and hash-division at the stated
"about 10% slower than the fastest algorithm" -- so only column ranks
and ratios, never absolute values, should be compared against them.
EXPERIMENTS.md documents the reconstruction."""

#: How many leading columns of PAPER_TABLE4 are verbatim from the scan;
#: the remaining two are reconstructed as described above.
VERBATIM_COLUMNS = 4


@dataclass
class Table4Row:
    """All six strategy runs for one size point."""

    divisor_tuples: int
    quotient_tuples: int
    runs: dict

    def total_ms(self, strategy: str) -> float:
        """Model milliseconds of one strategy."""
        return self.runs[strategy].total_ms


def run_point(
    divisor_tuples: int,
    quotient_tuples: int,
    strategies: tuple[str, ...] = STRATEGIES,
    units: CostUnits = PAPER_UNITS,
    seed: int = 0,
    profile: bool = False,
) -> Table4Row:
    """Run all strategies for one (|S|, |Q|) size point.

    With ``profile=True`` each strategy runs under a fresh recording
    tracer and its :class:`~repro.obs.profile.QueryProfile` is attached
    to the run (``runs[strategy].profile``) -- the per-operator view of
    where the cell's milliseconds went.
    """
    runs: dict[str, DivisionRun] = {}
    for strategy in strategies:
        dividend, divisor = make_exact_division(
            divisor_tuples, quotient_tuples, seed=seed
        )
        tracer = None
        if profile:
            from repro.obs.span import Tracer

            tracer = Tracer()
        runs[strategy] = run_strategy_on_relations(
            strategy,
            dividend,
            divisor,
            expected_quotient=quotient_tuples,
            duplicate_free_inputs=True,
            units=units,
            tracer=tracer,
        )
    return Table4Row(divisor_tuples, quotient_tuples, runs)


def rows(
    sizes: tuple[tuple[int, int], ...] = TABLE2_SIZES,
    strategies: tuple[str, ...] = STRATEGIES,
    units: CostUnits = PAPER_UNITS,
) -> list[Table4Row]:
    """Run the full grid (expensive: the largest point divides a
    160,000-tuple dividend six times)."""
    return [run_point(s, q, strategies, units) for s, q in sizes]


def render_breakdown(
    table_rows: list[Table4Row], strategies: tuple[str, ...] = STRATEGIES
) -> str:
    """CPU/I-O breakdown per strategy and size point.

    The split is where the paper's buffer-effect observations live: at
    small sizes everything is CPU (the dividend stays buffered); the
    sort-based strategies grow an I/O component once runs spill.
    """
    out_rows = []
    for row in table_rows:
        for strategy in strategies:
            run = row.runs[strategy]
            out_rows.append(
                (
                    row.divisor_tuples,
                    row.quotient_tuples,
                    strategy,
                    run.cpu_ms,
                    run.io_ms,
                    run.total_ms,
                )
            )
    return render_table(
        ("|S|", "|Q|", "strategy", "cpu ms", "io ms", "total ms"),
        out_rows,
        title="Table 4 breakdown: model CPU vs model I/O.",
    )


def render(table_rows: list[Table4Row], strategies: tuple[str, ...] = STRATEGIES) -> str:
    """Formatted Table 4 (measured model ms, paper ms interleaved when
    the size point is one of the paper's)."""
    out_rows = []
    for row in table_rows:
        out_rows.append(
            [
                row.divisor_tuples,
                row.quotient_tuples,
                "measured",
                *[round(row.total_ms(s)) for s in strategies],
            ]
        )
        paper = PAPER_TABLE4.get((row.divisor_tuples, row.quotient_tuples))
        if paper is not None and strategies == STRATEGIES:
            out_rows.append(["", "", "paper", *paper])
    return render_table(
        ("|S|", "|Q|", "source", *strategies),
        out_rows,
        title="Table 4. Experimental Cost of Division (model ms).",
    )
