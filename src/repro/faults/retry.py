"""Retry with capped exponential backoff, on a deterministic clock.

Transient device faults (and checksum failures, which a re-read of an
intact page image heals) are retried by
:class:`repro.storage.diskbase.PagedDiskBase` under a
:class:`RetryPolicy`.  Each retried transfer is re-issued through the
normal accounting path, so its seeks/latency/transfer milliseconds land
in the Table 3 cost meters exactly like any other physical I/O -- the
:mod:`repro.obs.iotrace` conservation validator keeps holding under
faults because retries are *real* (accounted) transfers, not invisible
ones.

The backoff *wait* is model time, not I/O: it accumulates on an
injectable :class:`BackoffClock` (and on the device's
:class:`~repro.storage.diskbase.DeviceFaultStats`), so tests can assert
exact deterministic backoff schedules and the chaos CLI can report how
long a run spent waiting out transient faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient disk faults.

    Attributes:
        max_attempts: Total attempts per operation, including the
            first; ``max_attempts=1`` disables retrying.
        base_backoff_ms: Backoff charged after the first failure.
        multiplier: Growth factor per subsequent failure.
        max_backoff_ms: Cap on any single backoff wait.
    """

    max_attempts: int = 4
    base_backoff_ms: float = 1.0
    multiplier: float = 2.0
    max_backoff_ms: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigError("max_attempts must be >= 1")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise FaultConfigError("backoff milliseconds must be >= 0")
        if self.multiplier < 1.0:
            raise FaultConfigError("backoff multiplier must be >= 1")

    def backoff_ms(self, failure_number: int) -> float:
        """Backoff charged after the ``failure_number``-th failure (1-based).

        Deterministic (no jitter): the simulation values exact
        reproducibility over thundering-herd avoidance.
        """
        if failure_number < 1:
            raise FaultConfigError("failure_number is 1-based")
        wait = self.base_backoff_ms * (self.multiplier ** (failure_number - 1))
        return min(self.max_backoff_ms, wait)

    def total_backoff_ms(self, failures: int) -> float:
        """Backoff accumulated over ``failures`` consecutive failures."""
        return sum(self.backoff_ms(n) for n in range(1, failures + 1))


#: The stack's default policy: up to 4 attempts, 1/2/4 ms backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()


class BackoffClock:
    """Deterministic model clock that accumulates backoff waits.

    The default implementation never sleeps -- it *records* model
    milliseconds, matching the paper's computed (not measured) time
    base.  Tests inject their own instance to assert exact waits; a
    real deployment could subclass and actually sleep.
    """

    def __init__(self) -> None:
        self.waited_ms = 0.0
        self.waits = 0

    def wait(self, ms: float) -> None:
        """Record one backoff wait of ``ms`` model milliseconds."""
        self.waited_ms += ms
        self.waits += 1

    def reset(self) -> None:
        """Zero the accumulated waits."""
        self.waited_ms = 0.0
        self.waits = 0

    def __repr__(self) -> str:
        return f"<BackoffClock {self.waits} waits, {self.waited_ms:.1f} ms>"
