"""Deterministic fault injection and the defenses it exercises.

The package has three parts:

* :mod:`repro.faults.injector` -- the seedable :class:`FaultInjector`
  and its declarative :class:`FaultRule` grammar.  One injector is
  threaded through storage (disk faults), memory (allocation faults),
  and the parallel interconnect (batch faults); every decision it makes
  is recorded in a replayable schedule.
* :mod:`repro.faults.retry` -- the :class:`RetryPolicy` /
  :class:`BackoffClock` pair used by
  :class:`repro.storage.diskbase.PagedDiskBase` to retry transient
  faults with capped exponential backoff on a deterministic model
  clock.
* :mod:`repro.faults.chaos` -- the chaos campaign harness (randomized
  fault schedules over the full planner path, with the
  correct-answer-or-typed-error invariant).  It is *not* imported
  here: chaos depends on the plan and executor layers, which in turn
  depend on storage, and storage imports this package.  Import it
  explicitly as ``repro.faults.chaos``.
"""

from __future__ import annotations

from repro.faults.injector import (
    DISK_FAULT_KINDS,
    MEMORY_FAULT_KINDS,
    NETWORK_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultRule,
    InjectorCounters,
    schedule_to_jsonl,
    write_schedule_jsonl,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, BackoffClock, RetryPolicy

__all__ = [
    "DISK_FAULT_KINDS",
    "MEMORY_FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultRule",
    "InjectorCounters",
    "schedule_to_jsonl",
    "write_schedule_jsonl",
    "DEFAULT_RETRY_POLICY",
    "BackoffClock",
    "RetryPolicy",
]
