"""Seedable, deterministic fault injection: rules, decisions, schedules.

The paper's Section 5.1 simulated disk and Section 6 interconnect never
fail; production hardware does.  :class:`FaultInjector` is the one
decision point through which the storage, memory, and network layers
ask "does this operation fail, and how?".  It is

* **declarative** -- behaviour is a tuple of :class:`FaultRule`\\ s,
  each scoping one fault kind to a device / operation / page range /
  link and arming it with a trigger (probability, every-Nth, capped
  fire count),
* **deterministic** -- one seeded :class:`random.Random` drives every
  probabilistic trigger, so the same seed against the same operation
  sequence produces a byte-identical fault schedule (the chaos suite's
  replay guarantee), and
* **observable** -- every fired fault is appended to
  :attr:`FaultInjector.schedule` as a :class:`FaultEvent`, exportable
  as JSONL for CI artifacts and seed replay.

The hooks are pay-for-use: a layer holding no injector performs one
``is None`` test per operation and allocates nothing.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import FaultConfigError, MemoryPoolError

#: Fault kinds applied to disk page transfers.
DISK_FAULT_KINDS = ("transient", "permanent", "corrupt", "torn", "latency")

#: Fault kinds applied to interconnect batch sends.
NETWORK_FAULT_KINDS = ("drop", "duplicate")

#: Fault kinds applied to memory-pool allocations.
MEMORY_FAULT_KINDS = ("exhaust", "pressure")

_ALL_KINDS = DISK_FAULT_KINDS + NETWORK_FAULT_KINDS + MEMORY_FAULT_KINDS

_DISK_OPS = ("read", "write", "any")


def _scope_of(kind: str) -> str:
    if kind in DISK_FAULT_KINDS:
        return "disk"
    if kind in NETWORK_FAULT_KINDS:
        return "network"
    return "memory"


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: *what* fails, *where*, and *when*.

    Attributes:
        kind: Fault kind; one of :data:`DISK_FAULT_KINDS` (``transient``
            / ``permanent`` device errors, ``corrupt`` bit flips,
            ``torn`` partial writes, ``latency``),
            :data:`NETWORK_FAULT_KINDS` (``drop`` / ``duplicate``
            batches), or :data:`MEMORY_FAULT_KINDS` (``exhaust`` one
            allocation, ``pressure`` shrinking the pool budget).
        op: Disk rules only: ``"read"``, ``"write"``, or ``"any"``.
        device: Disk rules: restrict to one device name (``None`` =
            any device).
        page_min / page_max: Disk rules: inclusive page-number range
            (``None`` = unbounded on that side).
        sender / receiver: Network rules: restrict to one link end
            (``None`` = any).
        tag: Memory rules: allocation-tag prefix (``None`` = any).
        probability: Chance of firing per eligible operation; ``1.0``
            fires on every eligible operation the other triggers allow.
        every_nth: Fire only on every Nth *eligible* operation.
        max_fires: Cap on total fires (``1`` = one-shot); ``None`` =
            unbounded.
        latency_ms: For ``latency``: model milliseconds added.
        bit: For ``corrupt``: which bit of the page image to flip;
            ``None`` picks one with the injector's seeded RNG (the
            choice is recorded in the schedule, so replay is exact).
        persistent: For ``corrupt``: flip the *stored* image (every
            later read sees it) instead of the returned copy (a
            transient transfer corruption healed by re-reading).
        pressure_factor: For ``pressure``: the pool budget is shrunk to
            ``budget * pressure_factor``.
    """

    kind: str
    op: str = "any"
    device: str | None = None
    page_min: int | None = None
    page_max: int | None = None
    sender: int | None = None
    receiver: int | None = None
    tag: str | None = None
    probability: float = 1.0
    every_nth: int | None = None
    max_fires: int | None = None
    latency_ms: float = 0.0
    bit: int | None = None
    persistent: bool = False
    pressure_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise FaultConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {_ALL_KINDS}"
            )
        if self.op not in _DISK_OPS:
            raise FaultConfigError(f"op must be one of {_DISK_OPS}, got {self.op!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultConfigError("probability must be in [0, 1]")
        if self.every_nth is not None and self.every_nth < 1:
            raise FaultConfigError("every_nth must be >= 1")
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultConfigError("max_fires must be >= 1")
        if self.kind == "latency" and self.latency_ms < 0:
            raise FaultConfigError("latency_ms must be >= 0")
        if self.kind == "torn" and self.op == "read":
            raise FaultConfigError("torn pages are a write fault; use op='write'")
        if not 0.0 < self.pressure_factor <= 1.0:
            raise FaultConfigError("pressure_factor must be in (0, 1]")

    @property
    def scope(self) -> str:
        """``"disk"``, ``"network"``, or ``"memory"`` -- derived from kind."""
        return _scope_of(self.kind)

    @property
    def one_shot(self) -> bool:
        """True when the rule fires at most once."""
        return self.max_fires == 1

    # -- scope matching ---------------------------------------------------

    def matches_disk(self, device: str, page_no: int, op: str) -> bool:
        """Is a disk transfer eligible for this rule?"""
        if self.scope != "disk":
            return False
        if self.op != "any" and self.op != op:
            return False
        if self.device is not None and self.device != device:
            return False
        if self.page_min is not None and page_no < self.page_min:
            return False
        if self.page_max is not None and page_no > self.page_max:
            return False
        return True

    def matches_network(self, sender: int, receiver: int) -> bool:
        """Is a batch send eligible for this rule?"""
        if self.scope != "network":
            return False
        if self.sender is not None and self.sender != sender:
            return False
        if self.receiver is not None and self.receiver != receiver:
            return False
        return True

    def matches_memory(self, tag: str) -> bool:
        """Is a pool allocation eligible for this rule?"""
        if self.scope != "memory":
            return False
        return self.tag is None or tag.startswith(self.tag)

    def to_dict(self) -> dict:
        """JSON-ready rule description (for provenance blocks)."""
        out: dict = {"kind": self.kind}
        for key in (
            "op", "device", "page_min", "page_max", "sender", "receiver",
            "tag", "every_nth", "max_fires", "bit",
        ):
            value = getattr(self, key)
            if value is not None and value != "any":
                out[key] = value
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.kind == "latency":
            out["latency_ms"] = self.latency_ms
        if self.persistent:
            out["persistent"] = True
        if self.kind == "pressure":
            out["pressure_factor"] = self.pressure_factor
        return out


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the injector's schedule.

    ``op_seq`` is the injector-global operation sequence number at fire
    time, so two schedules are comparable operation-for-operation; the
    ``detail`` dict carries kind-specific data (chosen bit, latency,
    link, tag) needed to replay the fault exactly.
    """

    seq: int
    op_seq: int
    rule_index: int
    kind: str
    scope: str
    op: str | None = None
    device: str | None = None
    page_no: int | None = None
    detail: tuple = ()

    def to_dict(self) -> dict:
        out = {
            "seq": self.seq,
            "op_seq": self.op_seq,
            "rule": self.rule_index,
            "kind": self.kind,
            "scope": self.scope,
        }
        if self.op is not None:
            out["op"] = self.op
        if self.device is not None:
            out["device"] = self.device
        if self.page_no is not None:
            out["page"] = self.page_no
        out.update(dict(self.detail))
        return out


@dataclass
class _DiskFault:
    """The injector's verdict on one disk transfer."""

    kind: str
    rule: FaultRule
    bit: int = 0
    latency_ms: float = 0.0


@dataclass
class InjectorCounters:
    """Aggregate fire counts, by kind (for metrics and provenance)."""

    by_kind: dict = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_kind.values())


class FaultInjector:
    """Seeded, rule-driven fault decisions for every layer.

    Args:
        rules: The declarative fault programme.
        seed: Seed for the one RNG behind probabilistic triggers and
            random bit choices.  Same seed + same operation sequence =>
            byte-identical :attr:`schedule`.

    One injector instance is threaded through an execution context
    (disks + memory pool) and, separately, through an
    :class:`~repro.parallel.network.Interconnect`; all of them share
    the operation sequence, so a schedule is a total order over the
    run's faults.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultConfigError(f"not a FaultRule: {rule!r}")
        self.seed = seed
        self.counters = InjectorCounters()
        self.schedule: list[FaultEvent] = []
        self._rng = random.Random(seed)
        self._eligible = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)
        self._op_seq = 0

    # -- trigger machinery ------------------------------------------------

    def _fire(self, index: int, rule: FaultRule) -> bool:
        """Evaluate one eligible rule's triggers; count and decide."""
        self._eligible[index] += 1
        if rule.max_fires is not None and self._fires[index] >= rule.max_fires:
            return False
        if rule.every_nth is not None and self._eligible[index] % rule.every_nth != 0:
            return False
        if rule.probability < 1.0 and self._rng.random() >= rule.probability:
            return False
        self._fires[index] += 1
        self.counters.count(rule.kind)
        return True

    def _record(
        self,
        rule_index: int,
        rule: FaultRule,
        scope: str,
        op: str | None = None,
        device: str | None = None,
        page_no: int | None = None,
        detail: tuple = (),
    ) -> FaultEvent:
        event = FaultEvent(
            seq=len(self.schedule),
            op_seq=self._op_seq,
            rule_index=rule_index,
            kind=rule.kind,
            scope=scope,
            op=op,
            device=device,
            page_no=page_no,
            detail=detail,
        )
        self.schedule.append(event)
        return event

    # -- layer hooks ------------------------------------------------------

    def on_disk_op(
        self, device: str, page_no: int, op: str, page_bytes: int
    ) -> _DiskFault | None:
        """Decide the fate of one page transfer.

        Returns ``None`` (no fault -- the overwhelmingly common case)
        or a :class:`_DiskFault` the device applies: raise, corrupt,
        tear, or delay.  At most one rule fires per operation (first
        match wins, in rule order).
        """
        self._op_seq += 1
        for index, rule in enumerate(self.rules):
            if not rule.matches_disk(device, page_no, op):
                continue
            if not self._fire(index, rule):
                continue
            bit = rule.bit
            if rule.kind in ("corrupt", "torn") and bit is None:
                bit = self._rng.randrange(max(1, page_bytes * 8))
            detail: tuple = ()
            if rule.kind in ("corrupt", "torn"):
                detail = (("bit", bit), ("persistent", rule.persistent))
            elif rule.kind == "latency":
                detail = (("latency_ms", rule.latency_ms),)
            self._record(index, rule, "disk", op, device, page_no, detail)
            return _DiskFault(
                kind=rule.kind,
                rule=rule,
                bit=bit or 0,
                latency_ms=rule.latency_ms,
            )
        return None

    def on_network_send(self, sender: int, receiver: int) -> str | None:
        """Decide the fate of one interconnect batch: ``None`` (deliver),
        ``"drop"`` (lost -- the sender must retransmit), or
        ``"duplicate"`` (delivered twice)."""
        self._op_seq += 1
        for index, rule in enumerate(self.rules):
            if not rule.matches_network(sender, receiver):
                continue
            if not self._fire(index, rule):
                continue
            self._record(
                index, rule, "network",
                detail=(("sender", sender), ("receiver", receiver)),
            )
            return rule.kind
        return None

    def on_memory_allocate(self, pool, size: int, tag: str) -> None:
        """Decide the fate of one pool allocation.

        ``exhaust`` raises :class:`~repro.errors.MemoryPoolError` (the
        hash operators translate it into their overflow error, which
        the plan layer degrades into partitioned processing);
        ``pressure`` shrinks the pool's budget in place, so *later*
        allocations overflow and trigger the same degradation paths.
        """
        self._op_seq += 1
        for index, rule in enumerate(self.rules):
            if not rule.matches_memory(tag):
                continue
            if not self._fire(index, rule):
                continue
            # Allocation tags may carry per-process instance suffixes
            # ("quotient-bitmaps#7"); record only the base tag so the
            # schedule is byte-identical across processes and replays.
            base_tag = tag.split("#", 1)[0]
            if rule.kind == "pressure":
                new_budget = pool.apply_pressure(rule.pressure_factor)
                self._record(
                    index, rule, "memory",
                    detail=(("tag", base_tag), ("new_budget", new_budget)),
                )
                return
            self._record(
                index, rule, "memory", detail=(("tag", base_tag), ("size", size))
            )
            raise MemoryPoolError(
                f"injected memory fault: allocation of {size} bytes ({tag}) denied"
            )
        return

    # -- reporting --------------------------------------------------------

    @property
    def operations_seen(self) -> int:
        """Operations offered to the injector so far (all scopes)."""
        return self._op_seq

    def fires_of(self, rule_index: int) -> int:
        """How many times one rule has fired."""
        return self._fires[rule_index]

    def summary(self) -> dict:
        """JSON-ready injector summary for provenance / reports."""
        return {
            "enabled": True,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
            "operations_seen": self._op_seq,
            "faults_fired": dict(sorted(self.counters.by_kind.items())),
        }


def schedule_to_jsonl(events: Iterable[FaultEvent]) -> str:
    """Serialize a fault schedule as JSONL (one event per line).

    Keys are sorted and floats are emitted by ``json`` defaults, so the
    same schedule always yields byte-identical text -- the determinism
    contract the chaos suite pins.
    """
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


def write_schedule_jsonl(path, events: Iterable[FaultEvent]) -> int:
    """Write a fault schedule to ``path``; returns the event count."""
    events = list(events)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(schedule_to_jsonl(events))
    return len(events)
