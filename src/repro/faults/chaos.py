"""Chaos campaigns: randomized fault schedules over the planner path.

The invariant this module exists to check, for every query under every
fault schedule:

    **the query either returns the oracle-equal answer or raises a
    typed :class:`~repro.errors.ReproError` -- and in both cases the
    stack is clean afterwards** (no fixed buffer frames, no live
    memory-pool bytes, no surviving run/temp pages, exact Table 3
    cost-meter conservation between the I/O trace and the statistics).

:func:`run_chaos_query` executes one division query through the full
planner -> executor path (stored relations, cold, on fault-injected
devices) and verifies the invariant.  :func:`run_campaign` strings
deterministic sequences of such queries together -- same seed, same
fault schedules, byte-identical JSONL -- and is what the ``repro
chaos`` CLI subcommand and the CI chaos-smoke job drive.

This module imports the plan and executor layers, which is why it is
*not* re-exported from :mod:`repro.faults` (storage imports that
package; importing chaos there would close an import cycle).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.executor.iterator import ExecContext
from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    FaultRule,
)
from repro.faults.retry import RetryPolicy
from repro.obs.iotrace import IoEventLog, verify_conservation
from repro.plan.logical import DivideNode, StoredSourceNode
from repro.plan.planner import compile_plan
from repro.relalg.algebra import divide_set_semantics
from repro.relalg.relation import Relation
from repro.storage.catalog import Catalog
from repro.storage.config import StorageConfig
from repro.workloads.synthetic import make_exact_division

#: Ring-buffer capacity for the chaos I/O trace: generous, because a
#: single dropped event voids the conservation check.
TRACE_CAPACITY = 1 << 18

#: The chaos stack uses deliberately tiny pages and a tiny buffer pool
#: so even small workloads span many pages and re-read them often --
#: every transfer is a fault opportunity.  (The paper's 8 KB pages
#: would fit a whole chaos workload in one page and the buffer would
#: absorb every re-read, starving the injector of eligible operations.)
CHAOS_CONFIG = StorageConfig(
    page_size=512,
    sort_run_page_size=256,
    buffer_size=4 * 512,
    memory_limit=16 * 512,
    sort_buffer_size=4 * 512,
)


def default_chaos_rules(rng: random.Random) -> list[FaultRule]:
    """Draw a small deterministic fault programme from ``rng``.

    Mixes every fault scope: disk errors (transient and permanent),
    corruption (transient and persistent), torn writes, latency, and
    memory exhaustion / pressure.  Probabilities are kept low enough
    that most queries run to completion, so campaigns exercise both
    arms of the correct-answer-or-typed-error invariant.
    """
    rules: list[FaultRule] = []
    for _ in range(rng.randint(1, 3)):
        pick = rng.randrange(8)
        device = rng.choice([None, None, "data", "temp", "runs"])
        if pick == 0:
            rules.append(
                FaultRule(
                    "transient",
                    op=rng.choice(["read", "write", "any"]),
                    device=device,
                    probability=rng.uniform(0.02, 0.3),
                )
            )
        elif pick == 1:
            rules.append(
                FaultRule(
                    "permanent",
                    op=rng.choice(["read", "write", "any"]),
                    device=device,
                    probability=rng.uniform(0.005, 0.05),
                    max_fires=1,
                )
            )
        elif pick == 2:
            rules.append(
                FaultRule(
                    "corrupt",
                    op="read",
                    device=device,
                    probability=rng.uniform(0.02, 0.15),
                    persistent=rng.random() < 0.3,
                )
            )
        elif pick == 3:
            rules.append(
                FaultRule(
                    "torn",
                    op="write",
                    device=device,
                    probability=rng.uniform(0.01, 0.1),
                    max_fires=rng.choice([1, 2]),
                )
            )
        elif pick == 4:
            rules.append(
                FaultRule(
                    "latency",
                    device=device,
                    every_nth=rng.randint(2, 12),
                    latency_ms=rng.uniform(0.5, 25.0),
                )
            )
        elif pick == 5:
            rules.append(
                FaultRule(
                    "exhaust",
                    tag=rng.choice([None, "divisor-table", "quotient-table"]),
                    probability=rng.uniform(0.01, 0.2),
                    max_fires=1,
                )
            )
        elif pick == 6:
            rules.append(
                FaultRule(
                    "pressure",
                    probability=rng.uniform(0.01, 0.1),
                    max_fires=1,
                    pressure_factor=rng.uniform(0.2, 0.8),
                )
            )
        else:
            rules.append(
                FaultRule(
                    "transient",
                    op="read",
                    device=device,
                    every_nth=rng.randint(2, 12),
                )
            )
    return rules


@dataclass
class ChaosOutcome:
    """The verdict on one chaos query.

    ``outcome`` is ``"answer"`` (the plan returned a relation) or
    ``"typed-error"`` (a :class:`~repro.errors.ReproError` subtype was
    raised).  ``violations`` is empty iff the full invariant held.
    """

    outcome: str
    error_type: str | None = None
    error_message: str | None = None
    result_tuples: int | None = None
    oracle_tuples: int = 0
    violations: list[str] = field(default_factory=list)
    schedule: list[FaultEvent] = field(default_factory=list)
    injector_summary: dict = field(default_factory=dict)
    device_fault_stats: dict = field(default_factory=dict)
    backoff_waits: int = 0
    backoff_ms: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the chaos invariant held for this query."""
        return not self.violations

    def to_dict(self) -> dict:
        out = {
            "outcome": self.outcome,
            "oracle_tuples": self.oracle_tuples,
            "violations": list(self.violations),
            "faults": self.injector_summary.get("faults_fired", {}),
            "backoff_waits": self.backoff_waits,
            "backoff_ms": round(self.backoff_ms, 3),
            "devices": self.device_fault_stats,
        }
        if self.outcome == "typed-error":
            out["error_type"] = self.error_type
            out["error_message"] = self.error_message
        else:
            out["result_tuples"] = self.result_tuples
        return out


def run_chaos_query(
    dividend: Relation,
    divisor: Relation,
    rules: list[FaultRule],
    seed: int,
    memory_budget: int | None = None,
    retry_policy: RetryPolicy | None = None,
    config: StorageConfig = CHAOS_CONFIG,
) -> ChaosOutcome:
    """Run one division query under a fault schedule; check the invariant.

    The relations are stored cold through the catalog (setup is
    fault-free -- the experiment starts from intact data), the injector
    is attached, and the query is planned *and* executed with faults
    live: the planner's statistics pass reads the stored inputs through
    the same faulty devices the execution does.

    Non-:class:`~repro.errors.ReproError` exceptions propagate -- an
    untyped error is precisely the kind of bug the chaos suite exists
    to catch.
    """
    oracle = set(divide_set_semantics(dividend, divisor))
    trace = IoEventLog(capacity=TRACE_CAPACITY)
    ctx = ExecContext(
        config=config,
        memory_budget=memory_budget,
        io_trace=trace,
        retry_policy=retry_policy,
    )
    try:
        catalog = Catalog(ctx.pool, ctx.data_disk)
        stored_dividend = catalog.store(dividend, "chaos_dividend", cold=True)
        stored_divisor = catalog.store(divisor, "chaos_divisor", cold=True)
        injector = FaultInjector(rules, seed=seed)
        ctx.attach_fault_injector(injector)
        node = DivideNode(
            StoredSourceNode(stored_dividend), StoredSourceNode(stored_divisor)
        )
        result: Relation | None = None
        error: ReproError | None = None
        plan = None
        try:
            plan = compile_plan(node, ctx)
            result = plan.execute(name="quotient")
        except ReproError as exc:
            error = exc
        finally:
            if plan is not None:
                plan.close()
        # Faults stay attached up to here; detach before the invariant
        # audit so the audit itself cannot be injected.
        ctx.attach_fault_injector(None)
        outcome = ChaosOutcome(
            outcome="answer" if error is None else "typed-error",
            error_type=type(error).__name__ if error is not None else None,
            error_message=str(error) if error is not None else None,
            result_tuples=len(result) if result is not None else None,
            oracle_tuples=len(oracle),
            schedule=list(injector.schedule),
            injector_summary=injector.summary(),
            device_fault_stats={
                name: stats.to_dict() for name, stats in ctx.fault_stats.items()
            },
            backoff_waits=ctx.backoff_clock.waits,
            backoff_ms=ctx.backoff_clock.waited_ms,
        )
        violations = outcome.violations
        if result is not None and set(result.rows) != oracle:
            violations.append(
                f"wrong answer: {len(result)} tuples != oracle {len(oracle)} "
                "(silent corruption reached the result)"
            )
        fixed = ctx.pool.fixed_page_count()
        if fixed:
            violations.append(f"{fixed} buffer frames still fixed")
        if ctx.memory.bytes_in_use:
            violations.append(
                f"{ctx.memory.bytes_in_use} memory-pool bytes still live"
            )
        if ctx.run_disk.page_count:
            violations.append(
                f"{ctx.run_disk.page_count} run-file pages not destroyed"
            )
        if ctx.temp_disk.page_count:
            violations.append(
                f"{ctx.temp_disk.page_count} temp pages not destroyed"
            )
        conservation = verify_conservation(trace, ctx.io_stats)
        if not conservation.ok:
            violations.append(f"cost meters leaked: {conservation}")
        return outcome
    finally:
        ctx.close()


@dataclass
class ChaosRunRecord:
    """One campaign entry: the run's seed, rules, and outcome."""

    index: int
    seed: int
    rules: list[FaultRule]
    outcome: ChaosOutcome

    def to_dict(self) -> dict:
        out = {
            "run": self.index,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        out.update(self.outcome.to_dict())
        return out


@dataclass
class ChaosReport:
    """Aggregate verdict of one campaign."""

    seed: int
    records: list[ChaosRunRecord] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(record.outcome.ok for record in self.records)

    @property
    def answers(self) -> int:
        return sum(1 for r in self.records if r.outcome.outcome == "answer")

    @property
    def typed_errors(self) -> int:
        return sum(1 for r in self.records if r.outcome.outcome == "typed-error")

    @property
    def faults_fired(self) -> int:
        return sum(len(r.outcome.schedule) for r in self.records)

    def violations(self) -> list[str]:
        """Every invariant violation, prefixed with its run index."""
        out = []
        for record in self.records:
            out.extend(
                f"run {record.index} (seed {record.seed}): {violation}"
                for violation in record.outcome.violations
            )
        return out

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "queries": len(self.records),
            "answers": self.answers,
            "typed_errors": self.typed_errors,
            "faults_fired": self.faults_fired,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "runs": [record.to_dict() for record in self.records],
        }

    def schedule_jsonl(self) -> str:
        """Campaign-wide fault schedule: one JSON line per fired fault,
        annotated with the run index and run seed.  Deterministic for a
        given campaign seed -- byte-identical across replays."""
        lines = []
        for record in self.records:
            for event in record.outcome.schedule:
                entry = {"run": record.index, "run_seed": record.seed}
                entry.update(event.to_dict())
                lines.append(json.dumps(entry, sort_keys=True))
        return "".join(line + "\n" for line in lines)

    def summary_line(self) -> str:
        status = "OK" if self.ok else "INVARIANT VIOLATED"
        return (
            f"chaos seed {self.seed}: {len(self.records)} queries, "
            f"{self.answers} answers, {self.typed_errors} typed errors, "
            f"{self.faults_fired} faults fired -- {status}"
        )


def run_campaign(
    seed: int = 0,
    queries: int = 20,
    divisor_tuples: int = 8,
    quotient_tuples: int = 32,
    memory_budget: int | None = None,
    max_seconds: float | None = None,
    rules: list[FaultRule] | None = None,
    retry_policy: RetryPolicy | None = None,
) -> ChaosReport:
    """Run a deterministic sequence of chaos queries.

    Every run's fault rules, injector seed, workload shuffle, and
    memory budget derive from ``seed`` alone, so the same seed replays
    the same campaign (``max_seconds`` only truncates it; it never
    changes what any individual run does).

    Args:
        seed: Campaign seed.
        queries: Number of queries to attempt.
        divisor_tuples / quotient_tuples: ``R = Q x S`` workload shape
            per run (the Table 4 generator).
        memory_budget: Fixed per-run budget; ``None`` draws one per run
            (including unbounded and tight-enough-to-overflow choices).
        max_seconds: Optional wall-clock cap for CI smoke jobs.
        rules: Fixed fault programme; ``None`` draws one per run.
        retry_policy: Device retry policy override.
    """
    master = random.Random(seed)
    report = ChaosReport(seed=seed)
    started = time.monotonic()
    for index in range(queries):
        run_seed = master.randrange(2**32)
        rule_rng = random.Random(run_seed ^ 0x9E3779B9)
        run_rules = list(rules) if rules is not None else default_chaos_rules(rule_rng)
        budget = (
            memory_budget
            if memory_budget is not None
            else rule_rng.choice([None, None, None, 2048, 8192, 65536])
        )
        dividend, divisor = make_exact_division(
            divisor_tuples, quotient_tuples, seed=run_seed & 0xFFFF
        )
        outcome = run_chaos_query(
            dividend,
            divisor,
            run_rules,
            seed=run_seed,
            memory_budget=budget,
            retry_policy=retry_policy,
        )
        report.records.append(
            ChaosRunRecord(index=index, seed=run_seed, rules=run_rules, outcome=outcome)
        )
        if max_seconds is not None and time.monotonic() - started >= max_seconds:
            break
    report.elapsed_s = time.monotonic() - started
    return report


# -- the serve scenario ------------------------------------------------
#
# The query scenario above stresses one division at a time; the serve
# scenario stresses the *service*: concurrent clients, catalog updates,
# caches, admission grants, and deadlines -- all under the same fault
# programmes.  Its invariant extends the chaos invariant:
#
#     every request either completes with the serial-order-oracle-equal
#     answer or fails with a typed ReproError, AND after the drain no
#     admission grant bytes, table locks, fixed buffer frames, or
#     memory-pool bytes survive.
#
# Oracle checks skip relations tainted by failed (possibly partial)
# writes -- their ground truth is unknowable -- but cache coherence is
# still enforced for them: the catalog bumps versions even on failed
# writes, so a stale cached quotient would surface as a mismatch on an
# *untainted* table downstream.

#: Scenario names accepted by the CLI's ``chaos --scenario``.
CHAOS_SCENARIOS = ("query", "serve")


@dataclass
class ServeChaosRecord:
    """One serve-scenario round: its seeds, rules, and verdict."""

    index: int
    seed: int
    rules: list[FaultRule]
    requests: int = 0
    ok: int = 0
    typed_errors: int = 0
    timeouts: int = 0
    shed: int = 0
    cached: int = 0
    faults_fired: int = 0
    oracle_checked: int = 0
    trace_digest: str = ""
    violations: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "round": self.index,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
            "requests": self.requests,
            "ok": self.ok,
            "typed_errors": self.typed_errors,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "cached": self.cached,
            "faults_fired": self.faults_fired,
            "oracle_checked": self.oracle_checked,
            "trace_digest": self.trace_digest,
            "violations": list(self.violations),
        }


@dataclass
class ServeChaosReport:
    """Aggregate verdict of one serve-scenario campaign."""

    seed: int
    records: list[ServeChaosRecord] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(not record.violations for record in self.records)

    def violations(self) -> list[str]:
        out = []
        for record in self.records:
            out.extend(
                f"round {record.index} (seed {record.seed}): {violation}"
                for violation in record.violations
            )
        return out

    def to_dict(self) -> dict:
        return {
            "scenario": "serve",
            "seed": self.seed,
            "rounds": len(self.records),
            "requests": sum(r.requests for r in self.records),
            "ok_requests": sum(r.ok for r in self.records),
            "typed_errors": sum(r.typed_errors for r in self.records),
            "faults_fired": sum(r.faults_fired for r in self.records),
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "runs": [record.to_dict() for record in self.records],
        }

    def summary_line(self) -> str:
        status = "OK" if self.ok else "INVARIANT VIOLATED"
        requests = sum(r.requests for r in self.records)
        ok_requests = sum(r.ok for r in self.records)
        errors = sum(r.typed_errors for r in self.records)
        fired = sum(r.faults_fired for r in self.records)
        return (
            f"serve chaos seed {self.seed}: {len(self.records)} rounds, "
            f"{ok_requests}/{requests} requests ok, {errors} typed errors, "
            f"{fired} faults fired -- {status}"
        )


def run_serve_campaign(
    seed: int = 0,
    rounds: int = 5,
    clients: int = 3,
    requests_per_client: int = 5,
    table_pairs: int = 2,
    divisor_tuples: int = 4,
    quotient_tuples: int = 12,
    update_fraction: float = 0.25,
    memory_budget: int | None = None,
    max_seconds: float | None = None,
    rules: list[FaultRule] | None = None,
) -> ServeChaosReport:
    """Run the serve chaos scenario: concurrent service under faults.

    Each round builds a fresh service on fault-injected devices (tiny
    smoke pages, so small workloads still present many fault-eligible
    transfers), drives a deterministic multi-client mixed
    query/update script through it, and audits the extended invariant.
    Everything derives from ``seed``; ``max_seconds`` only truncates.

    A round's memory budget and per-request deadline are drawn from the
    round's rule RNG (unless ``memory_budget`` pins the former), so
    campaigns also exercise admission waiting, load shedding, overflow
    fallback, and deadline delivery under faults.
    """
    from repro.errors import ServeError
    from repro.serve.bench import SMOKE_CONFIG, LoadConfig, run_load

    master = random.Random(seed)
    report = ServeChaosReport(seed=seed)
    started = time.monotonic()
    for index in range(rounds):
        run_seed = master.randrange(2**32)
        rule_rng = random.Random(run_seed ^ 0x9E3779B9)
        run_rules = (
            list(rules) if rules is not None else default_chaos_rules(rule_rng)
        )
        budget = (
            memory_budget
            if memory_budget is not None
            else rule_rng.choice([None, None, 4096, 16384, 1 << 16])
        )
        deadline = rule_rng.choice([None, None, None, 50.0, 250.0])
        record = ServeChaosRecord(index=index, seed=run_seed, rules=run_rules)
        config = LoadConfig(
            clients=clients,
            requests_per_client=requests_per_client,
            seed=run_seed & 0xFFFF,
            skew=1.0,
            table_pairs=table_pairs,
            divisor_tuples=divisor_tuples,
            quotient_tuples=quotient_tuples,
            update_fraction=update_fraction,
            deadline_ms=deadline,
            memory_budget=budget,
            track_oracle=True,
            storage_config=SMOKE_CONFIG,
            fault_rules=tuple(run_rules),
            fault_seed=run_seed,
        )
        try:
            load = run_load(config)
        except ServeError as exc:
            # run_load's post-drain audit found leaked grants, locks,
            # fixed frames, or pool bytes -- the invariant's second arm.
            record.violations.append(f"dirty drain: {exc}")
            report.records.append(record)
            if max_seconds is not None and time.monotonic() - started >= max_seconds:
                break
            continue
        record.requests = load.requests
        record.ok = load.ok
        record.typed_errors = load.timeouts + load.shed + load.errors
        record.timeouts = load.timeouts
        record.shed = load.shed
        record.cached = load.cached_results
        record.faults_fired = sum(
            load.fault_summary.get("faults_fired", {}).values()
        )
        record.oracle_checked = load.oracle_checked
        record.trace_digest = load.trace_digest
        if load.oracle_mismatches:
            record.violations.append(
                f"{load.oracle_mismatches} answers diverged from the "
                "serial-order oracle (stale cache or silent corruption)"
            )
        record.violations.extend(
            f"untyped failure escaped: {line}" for line in load.untyped_failures
        )
        pending = load.requests - (
            load.ok + load.timeouts + load.cancelled + load.shed + load.errors
        )
        if pending:
            record.violations.append(
                f"{pending} requests neither completed nor failed typed"
            )
        report.records.append(record)
        if max_seconds is not None and time.monotonic() - started >= max_seconds:
            break
    report.elapsed_s = time.monotonic() - started
    return report
