"""A query layer with the paper's proposed ``contains`` construct.

The paper closes with a language recommendation: since "it is much
easier to implement a query optimizer that rewrites a division operator
into an aggregation operator than vice versa, universal quantification
should be included as a language construct in database query languages,
e.g., as a 'contains' clause" (Section 5.2).

:class:`Query` is that construct, in miniature::

    from repro.query import Query

    q = (
        Query(transcript)
        .project("student_id", "course_no")
        .contains(
            Query(courses)
            .where(AttributeContains("title", "database"))
            .project("course_no")
        )
    )
    students = q.run()

``contains`` compiles to relational division, and -- this is the point
of routing it through a language construct -- the planner *knows* it is
a division: it feeds the actual input statistics to the cost advisor,
including whether the divisor side was restricted by a ``where`` (which
disqualifies the no-join counting strategies) and whether duplicates
are possible (bag projections), and runs the cheapest correct
algorithm.  ``explain()`` shows the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DivisionError
from repro.core.divide import _ADVISOR_DISPATCH, divide
from repro.costmodel.advisor import DivisionEstimates, choose_strategy
from repro.executor.iterator import ExecContext
from repro.metering import CpuCounters
from repro.obs.profile import OperatorStats, QueryProfile, build_profile
from repro.obs.span import Clock, MONOTONIC_CLOCK, Tracer
from repro.relalg import algebra
from repro.relalg.predicates import Predicate
from repro.relalg.relation import Relation
from repro.relalg.tuples import projector


@dataclass(frozen=True)
class ProfiledResult:
    """A profiled evaluation: the result relation plus its profile.

    Returned by ``run(profile=True)`` so the un-profiled call keeps its
    plain-:class:`~repro.relalg.relation.Relation` return type.
    """

    relation: Relation
    profile: QueryProfile


@dataclass(frozen=True)
class _Step:
    kind: str  # "where" | "project" | "distinct"
    predicate: Predicate | None = None
    names: tuple[str, ...] = ()


class Query:
    """A tiny immutable pipeline of select/project steps over a relation.

    Every combinator returns a new ``Query``; nothing executes until
    :meth:`run` (or until the query is consumed by ``contains``).
    """

    def __init__(self, relation: Relation, _steps: tuple[_Step, ...] = ()) -> None:
        self.relation = relation
        self._steps = _steps

    # -- combinators ---------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        """σ: restrict by a predicate."""
        return Query(self.relation, self._steps + (_Step("where", predicate=predicate),))

    def project(self, *names: str) -> "Query":
        """π (bag semantics): keep the named attributes."""
        return Query(self.relation, self._steps + (_Step("project", names=names),))

    def distinct(self) -> "Query":
        """Eliminate duplicate rows."""
        return Query(self.relation, self._steps + (_Step("distinct"),))

    def contains(self, divisor: "Query") -> "ContainsQuery":
        """∀: keep the groups that contain *every* divisor tuple.

        The divisor's attributes name the universally quantified
        columns; the remaining attributes of this query form the
        result.  Compiles to relational division.
        """
        return ContainsQuery(self, divisor)

    # -- execution ---------------------------------------------------------

    @property
    def is_restricted(self) -> bool:
        """True when a ``where`` step restricts the pipeline -- the
        signal that division-by-counting would need a semi-join."""
        return any(step.kind == "where" for step in self._steps)

    def run(
        self, name: str = "", profile: bool = False, clock: Clock | None = None
    ) -> "Relation | ProfiledResult":
        """Evaluate the pipeline to a relation.

        Args:
            name: Optional name for the result relation.
            profile: When true, time each step and return a
                :class:`ProfiledResult` carrying a step-tree
                :class:`~repro.obs.profile.QueryProfile` instead of the
                bare relation.
            clock: Injectable clock for deterministic profiling tests.
        """
        if not profile:
            return self._run_steps(name)
        clock = clock or MONOTONIC_CLOCK
        started = clock.now()
        node = OperatorStats(
            label=f"Relation({self.relation.name or 'relation'})",
            op_class="Relation",
            rows_out=len(self.relation),
        )
        node.calls["run"] = 1
        current = self.relation
        for step in self._steps:
            step_started = clock.now()
            current = self._apply_step(current, step)
            parent = OperatorStats(
                label=self._describe_step(step),
                op_class=step.kind.capitalize(),
                rows_out=len(current),
                wall_s=clock.now() - step_started,
            )
            parent.calls["run"] = 1
            parent.children.append(node)
            node = parent
        if name:
            current = current.rename(name)
        query_profile = QueryProfile(
            roots=[node],
            cpu=CpuCounters(),
            io_ms=0.0,
            wall_s=clock.now() - started,
        )
        return ProfiledResult(current, query_profile)

    def explain_analyze(self, clock: Clock | None = None) -> QueryProfile:
        """Run the pipeline and return its per-step profile tree."""
        result = self.run(profile=True, clock=clock)
        assert isinstance(result, ProfiledResult)
        return result.profile

    def _run_steps(self, name: str = "") -> Relation:
        current = self.relation
        for step in self._steps:
            current = self._apply_step(current, step)
        return current.rename(name) if name else current

    @staticmethod
    def _apply_step(current: Relation, step: _Step) -> Relation:
        if step.kind == "where":
            assert step.predicate is not None
            return algebra.select(current, step.predicate)
        if step.kind == "project":
            return algebra.project(current, step.names, distinct=False)
        return current.distinct()

    @staticmethod
    def _describe_step(step: _Step) -> str:
        if step.kind == "where":
            return f"where({step.predicate!r})"
        if step.kind == "project":
            return f"project({', '.join(step.names)})"
        return "distinct()"

    def describe(self) -> str:
        """One-line pipeline description."""
        parts = [self.relation.name or "relation"]
        parts.extend(self._describe_step(step) for step in self._steps)
        return " . ".join(parts)


@dataclass
class ContainsPlan:
    """The planner's decision for one ``contains`` evaluation."""

    strategy: str
    estimates: DivisionEstimates
    quotient_names: tuple[str, ...] = field(default_factory=tuple)

    def render(self) -> str:
        lines = [
            f"ForAll (contains) -> relational division via {self.strategy!r}",
            f"  dividend: ~{self.estimates.dividend_tuples} tuples",
            f"  divisor:  ~{self.estimates.divisor_tuples} tuples"
            + (" (restricted)" if self.estimates.divisor_restricted else ""),
            f"  quotient: {', '.join(self.quotient_names)}"
            f" (~{self.estimates.estimated_quotient} tuples)",
        ]
        if self.estimates.may_contain_duplicates:
            lines.append("  duplicates possible: counting needs preprocessing")
        return "\n".join(lines)


class ContainsQuery:
    """A planned universal quantification: dividend ``contains`` divisor."""

    def __init__(self, dividend: Query, divisor: Query) -> None:
        self.dividend = dividend
        self.divisor = divisor
        #: The profile of the most recent ``run(profile=True)``.
        self.last_profile: QueryProfile | None = None

    def plan(
        self,
        dividend_relation: Relation | None = None,
        divisor_relation: Relation | None = None,
    ) -> ContainsPlan:
        """Pick the division strategy from the (evaluated) inputs."""
        dividend_relation = (
            dividend_relation if dividend_relation is not None else self.dividend.run()
        )
        divisor_relation = (
            divisor_relation if divisor_relation is not None else self.divisor.run()
        )
        quotient_names, _ = algebra.division_attribute_split(
            dividend_relation, divisor_relation
        )
        quotient_of = projector(dividend_relation.schema, quotient_names)
        estimates = DivisionEstimates(
            dividend_tuples=len(dividend_relation),
            divisor_tuples=len(set(divisor_relation.rows)),
            quotient_tuples=len({quotient_of(row) for row in dividend_relation}),
            divisor_restricted=self.divisor.is_restricted,
            may_contain_duplicates=(
                dividend_relation.has_duplicates()
                or divisor_relation.has_duplicates()
            ),
        )
        return ContainsPlan(
            strategy=choose_strategy(estimates).strategy,
            estimates=estimates,
            quotient_names=quotient_names,
        )

    def run(
        self,
        ctx: ExecContext | None = None,
        name: str = "quotient",
        profile: bool = False,
        clock: Clock | None = None,
    ) -> "Relation | ProfiledResult":
        """Evaluate both sides, plan, and execute the division.

        Args:
            ctx: Execution context; a fresh one is created when omitted.
            name: Name of the returned quotient relation.
            profile: When true, execute under a recording
                :class:`~repro.obs.span.Tracer` and return a
                :class:`ProfiledResult` whose profile is the full
                EXPLAIN ANALYZE operator tree of the division plan.
            clock: Injectable clock for deterministic profiling tests.
        """
        if not profile:
            return self._execute(ctx, name)
        tracer = Tracer(clock=clock)
        owns_ctx = ctx is None
        if owns_ctx:
            ctx = ExecContext(tracer=tracer)
            previous_tracer = None
        else:
            previous_tracer = ctx.tracer
            ctx.tracer = tracer
        cpu_before = ctx.cpu.snapshot()
        io_ms_before = ctx.io_cost_ms()
        started = tracer.clock.now()
        try:
            relation = self._execute(ctx, name)
        finally:
            if previous_tracer is not None:
                ctx.tracer = previous_tracer
        query_profile = build_profile(
            tracer,
            ctx,
            cpu=ctx.cpu.delta_since(cpu_before),
            io_ms=ctx.io_cost_ms() - io_ms_before,
            wall_s=tracer.clock.now() - started,
        )
        self.last_profile = query_profile
        return ProfiledResult(relation, query_profile)

    def explain_analyze(
        self, ctx: ExecContext | None = None, clock: Clock | None = None
    ) -> QueryProfile:
        """Execute the division under tracing; return the operator tree.

        The reproduction's ``EXPLAIN ANALYZE``: per-iterator rows out,
        ``next()`` calls, Comp/Hash/Move/Bit deltas, buffer and I/O
        activity, and Table 1/Table 3 model milliseconds.  The
        per-operator deltas sum exactly to the run's global counters.
        """
        result = self.run(ctx=ctx, profile=True, clock=clock)
        assert isinstance(result, ProfiledResult)
        return result.profile

    def _execute(self, ctx: ExecContext | None, name: str) -> Relation:
        dividend_relation = self.dividend.run()
        divisor_relation = self.divisor.run()
        plan = self.plan(dividend_relation, divisor_relation)
        try:
            algorithm, options = _ADVISOR_DISPATCH[plan.strategy]
        except KeyError:  # pragma: no cover - advisor names are closed
            raise DivisionError(f"unplannable strategy {plan.strategy!r}")
        if algorithm in ("sort-aggregate", "hash-aggregate"):
            options = dict(
                options,
                eliminate_duplicates=plan.estimates.may_contain_duplicates,
            )
        return divide(
            dividend_relation,
            divisor_relation,
            algorithm=algorithm,
            ctx=ctx,
            name=name,
            **options,
        )

    def explain(self) -> str:
        """The textual plan: pipelines, the decision, and why."""
        plan = self.plan()
        return "\n".join(
            [
                f"dividend: {self.dividend.describe()}",
                f"divisor:  {self.divisor.describe()}",
                plan.render(),
            ]
        )
