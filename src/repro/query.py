"""A query layer with the paper's proposed ``contains`` construct.

The paper closes with a language recommendation: since "it is much
easier to implement a query optimizer that rewrites a division operator
into an aggregation operator than vice versa, universal quantification
should be included as a language construct in database query languages,
e.g., as a 'contains' clause" (Section 5.2).

:class:`Query` is that construct, in miniature::

    from repro.query import Query

    q = (
        Query(transcript)
        .project("student_id", "course_no")
        .contains(
            Query(courses)
            .where(AttributeContains("title", "database"))
            .project("course_no")
        )
    )
    students = q.run()

``contains`` compiles to relational division, and -- this is the point
of routing it through a language construct -- the planner *knows* it is
a division: it feeds the actual input statistics to the cost advisor,
including whether the divisor side was restricted by a ``where`` (which
disqualifies the no-join counting strategies) and whether duplicates
are possible (bag projections), and runs the cheapest correct
algorithm.  ``explain()`` shows the decision and the compiled plan.

Execution is *streaming*: ``run()`` lowers the combinator pipeline to a
logical plan (:mod:`repro.plan.logical`), compiles it into one
open-next-close :class:`~repro.executor.iterator.QueryIterator` tree
(:mod:`repro.plan.planner`), and drains that single pipeline -- no
intermediate :class:`~repro.relalg.relation.Relation` is materialized
per step, and the division algorithm chosen by the advisor at plan time
is just another physical operator in the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.advisor import DivisionEstimates
from repro.executor.iterator import ExecContext
from repro.obs.profile import QueryProfile, build_profile
from repro.obs.span import Clock, Tracer
from repro.plan.logical import (
    DistinctNode,
    DivideNode,
    FilterNode,
    LogicalNode,
    ProjectNode,
    SourceNode,
)
from repro.plan.physical import PhysicalPlan
from repro.plan.planner import collect_division_estimates, compile_plan
from repro.relalg.predicates import Predicate
from repro.relalg.relation import Relation
from repro.relalg.tuples import projector


@dataclass(frozen=True)
class ProfiledResult:
    """A profiled evaluation: the result relation plus its profile.

    Returned by ``run(profile=True)`` so the un-profiled call keeps its
    plain-:class:`~repro.relalg.relation.Relation` return type.
    """

    relation: Relation
    profile: QueryProfile


@dataclass(frozen=True)
class _Step:
    kind: str  # "where" | "project" | "distinct"
    predicate: Predicate | None = None
    names: tuple[str, ...] = ()


def _execute_profiled(
    compile_fn,
    ctx: ExecContext | None,
    name: str,
    clock: Clock | None,
) -> ProfiledResult:
    """Compile and run a plan under a recording tracer; build a profile.

    Shared by :meth:`Query.run` and :meth:`ContainsQuery.run`: installs
    a recording :class:`~repro.obs.span.Tracer` (restoring a borrowed
    context's tracer afterwards), snapshots the global meters around
    the run, and assembles the EXPLAIN ANALYZE profile whose
    per-operator deltas sum exactly to those global deltas.
    """
    tracer = Tracer(clock=clock)
    owns_ctx = ctx is None
    if owns_ctx:
        ctx = ExecContext(tracer=tracer)
        previous_tracer = None
    else:
        previous_tracer = ctx.tracer
        ctx.tracer = tracer
    cpu_before = ctx.cpu.snapshot()
    io_ms_before = ctx.io_cost_ms()
    started = tracer.clock.now()
    try:
        plan = compile_fn(ctx)
        relation = plan.execute(name=name)
    finally:
        if previous_tracer is not None:
            ctx.tracer = previous_tracer
    profile = build_profile(
        tracer,
        ctx,
        cpu=ctx.cpu.delta_since(cpu_before),
        io_ms=ctx.io_cost_ms() - io_ms_before,
        wall_s=tracer.clock.now() - started,
        decisions=plan.decisions,
    )
    return ProfiledResult(relation, profile)


class Query:
    """A tiny immutable pipeline of select/project steps over a relation.

    Every combinator returns a new ``Query``; nothing executes until
    :meth:`run` (or until the query is consumed by ``contains``).
    """

    def __init__(self, relation: Relation, _steps: tuple[_Step, ...] = ()) -> None:
        self.relation = relation
        self._steps = _steps

    # -- combinators ---------------------------------------------------

    def where(self, predicate: Predicate) -> "Query":
        """σ: restrict by a predicate."""
        return Query(self.relation, self._steps + (_Step("where", predicate=predicate),))

    def project(self, *names: str) -> "Query":
        """π (bag semantics): keep the named attributes."""
        return Query(self.relation, self._steps + (_Step("project", names=names),))

    def distinct(self) -> "Query":
        """Eliminate duplicate rows."""
        return Query(self.relation, self._steps + (_Step("distinct"),))

    def contains(self, divisor: "Query") -> "ContainsQuery":
        """∀: keep the groups that contain *every* divisor tuple.

        The divisor's attributes name the universally quantified
        columns; the remaining attributes of this query form the
        result.  Compiles to relational division.
        """
        return ContainsQuery(self, divisor)

    # -- planning ------------------------------------------------------

    @property
    def is_restricted(self) -> bool:
        """True when a ``where`` step restricts the pipeline -- the
        signal that division-by-counting would need a semi-join."""
        return any(step.kind == "where" for step in self._steps)

    def logical_plan(self) -> LogicalNode:
        """Lower the combinator pipeline to a logical plan tree."""
        node: LogicalNode = SourceNode(self.relation)
        for step in self._steps:
            if step.kind == "where":
                assert step.predicate is not None
                node = FilterNode(node, step.predicate)
            elif step.kind == "project":
                node = ProjectNode(node, step.names)
            else:
                node = DistinctNode(node)
        return node

    def compile(self, ctx: ExecContext | None = None) -> PhysicalPlan:
        """Compile the pipeline to an executable physical plan."""
        return compile_plan(self.logical_plan(), ctx)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        name: str = "",
        profile: bool = False,
        clock: Clock | None = None,
        ctx: ExecContext | None = None,
    ) -> "Relation | ProfiledResult":
        """Compile and stream the pipeline to a relation.

        Args:
            name: Optional name for the result relation.
            profile: When true, execute under a recording
                :class:`~repro.obs.span.Tracer` and return a
                :class:`ProfiledResult` carrying the EXPLAIN ANALYZE
                :class:`~repro.obs.profile.QueryProfile` of the
                compiled operator tree instead of the bare relation.
            clock: Injectable clock for deterministic profiling tests.
            ctx: Execution context to run against; a fresh one is
                created when omitted.
        """
        if not profile:
            return self.compile(ctx).execute(name=name)
        return _execute_profiled(self.compile, ctx, name, clock)

    def explain(self) -> str:
        """The compiled physical plan tree (no execution)."""
        return self.compile().explain()

    def explain_analyze(
        self, clock: Clock | None = None, ctx: ExecContext | None = None
    ) -> QueryProfile:
        """Run the compiled pipeline; return its per-operator profile."""
        result = self.run(profile=True, clock=clock, ctx=ctx)
        assert isinstance(result, ProfiledResult)
        return result.profile

    @staticmethod
    def _describe_step(step: _Step) -> str:
        if step.kind == "where":
            return f"where({step.predicate!r})"
        if step.kind == "project":
            return f"project({', '.join(step.names)})"
        return "distinct()"

    def describe(self) -> str:
        """One-line pipeline description."""
        parts = [self.relation.name or "relation"]
        parts.extend(self._describe_step(step) for step in self._steps)
        return " . ".join(parts)


@dataclass
class ContainsPlan:
    """The planner's decision for one ``contains`` evaluation."""

    strategy: str
    estimates: DivisionEstimates
    quotient_names: tuple[str, ...] = field(default_factory=tuple)

    def render(self) -> str:
        lines = [
            f"ForAll (contains) -> relational division via {self.strategy!r}",
            f"  dividend: ~{self.estimates.dividend_tuples} tuples",
            f"  divisor:  ~{self.estimates.divisor_tuples} tuples"
            + (" (restricted)" if self.estimates.divisor_restricted else ""),
            f"  quotient: {', '.join(self.quotient_names)}"
            f" (~{self.estimates.estimated_quotient} tuples)",
        ]
        if self.estimates.may_contain_duplicates:
            lines.append("  duplicates possible: counting needs preprocessing")
        return "\n".join(lines)


class ContainsQuery:
    """A planned universal quantification: dividend ``contains`` divisor."""

    def __init__(self, dividend: Query, divisor: Query) -> None:
        self.dividend = dividend
        self.divisor = divisor
        #: The profile of the most recent ``run(profile=True)``.
        self.last_profile: QueryProfile | None = None

    # -- planning ------------------------------------------------------

    def logical_plan(self) -> DivideNode:
        """Lower both pipelines into one ``Divide`` logical node."""
        return DivideNode(
            self.dividend.logical_plan(),
            self.divisor.logical_plan(),
            divisor_restricted=self.divisor.is_restricted,
        )

    def compile(self, ctx: ExecContext | None = None) -> PhysicalPlan:
        """Compile to a physical plan; the advisor picks the algorithm.

        The cost advisor is consulted *at plan time* with the exact
        input statistics; the chosen division algorithm becomes a
        physical operator in the single compiled iterator tree.
        """
        return compile_plan(self.logical_plan(), ctx)

    def plan(
        self,
        dividend_relation: Relation | None = None,
        divisor_relation: Relation | None = None,
    ) -> ContainsPlan:
        """Pick the division strategy from the (planned) inputs.

        Without arguments, the statistics come from the planner's
        zero-cost streaming pass over the logical plans; passing
        already-evaluated relations reuses them instead.
        """
        from repro.costmodel.advisor import choose_strategy
        from repro.relalg import algebra

        if dividend_relation is None and divisor_relation is None:
            node = self.logical_plan()
            estimates, quotient_names = collect_division_estimates(
                node.dividend, node.divisor, node.divisor_restricted
            )
            return ContainsPlan(
                strategy=choose_strategy(estimates).strategy,
                estimates=estimates,
                quotient_names=quotient_names,
            )
        dividend_relation = (
            dividend_relation if dividend_relation is not None else self.dividend.run()
        )
        divisor_relation = (
            divisor_relation if divisor_relation is not None else self.divisor.run()
        )
        quotient_names, divisor_names = algebra.division_attribute_split(
            dividend_relation, divisor_relation
        )
        quotient_of = projector(dividend_relation.schema, quotient_names)
        divisor_of = projector(dividend_relation.schema, divisor_names)
        divisor_values = {tuple(row) for row in divisor_relation}
        covered = {
            divisor_of(row) for row in dividend_relation
        } <= divisor_values
        estimates = DivisionEstimates(
            dividend_tuples=len(dividend_relation),
            divisor_tuples=len(divisor_values),
            quotient_tuples=len({quotient_of(row) for row in dividend_relation}),
            divisor_restricted=self.divisor.is_restricted or not covered,
            may_contain_duplicates=(
                dividend_relation.has_duplicates()
                or divisor_relation.has_duplicates()
            ),
        )
        return ContainsPlan(
            strategy=choose_strategy(estimates).strategy,
            estimates=estimates,
            quotient_names=quotient_names,
        )

    # -- execution -----------------------------------------------------

    def run(
        self,
        ctx: ExecContext | None = None,
        name: str = "quotient",
        profile: bool = False,
        clock: Clock | None = None,
    ) -> "Relation | ProfiledResult":
        """Compile both sides and the division into one streaming plan.

        Args:
            ctx: Execution context; a fresh one is created when omitted.
            name: Name of the returned quotient relation.
            profile: When true, execute under a recording
                :class:`~repro.obs.span.Tracer` and return a
                :class:`ProfiledResult` whose profile is the full
                EXPLAIN ANALYZE operator tree of the compiled plan.
            clock: Injectable clock for deterministic profiling tests.
        """
        if not profile:
            return self.compile(ctx).execute(name=name)
        result = _execute_profiled(self.compile, ctx, name, clock)
        self.last_profile = result.profile
        return result

    def explain_analyze(
        self, ctx: ExecContext | None = None, clock: Clock | None = None
    ) -> QueryProfile:
        """Execute the compiled plan under tracing; return the tree.

        The reproduction's ``EXPLAIN ANALYZE``: per-iterator rows out,
        ``next()`` calls, Comp/Hash/Move/Bit deltas, buffer and I/O
        activity, and Table 1/Table 3 model milliseconds.  The
        per-operator deltas sum exactly to the run's global counters.
        """
        result = self.run(ctx=ctx, profile=True, clock=clock)
        assert isinstance(result, ProfiledResult)
        return result.profile

    def explain(self) -> str:
        """The textual plan: pipelines, the decision, the operator tree."""
        plan = self.plan()
        physical = self.compile()
        return "\n".join(
            [
                f"dividend: {self.dividend.describe()}",
                f"divisor:  {self.divisor.describe()}",
                plan.render(),
                "physical plan:",
                physical.root.explain(indent=1),
            ]
        )
