"""Simulated record-oriented file system (the paper's Section 5.1 substrate).

The original experiments ran "on top of a record-oriented file system
developed at the Oregon Graduate Center using experiences from WiSS and
GAMMA. It simulates a disk using a UNIX file or main memory."  This
package rebuilds those services:

* :mod:`repro.storage.disk` -- a page-addressed simulated disk that
  counts seeks, transfers, and bytes moved,
* :mod:`repro.storage.stats` -- the Table 3 cost weights that convert
  those counts to model milliseconds,
* :mod:`repro.storage.buffer` -- a fix/unfix buffer manager with LRU
  replacement, dynamic growth, and *virtual devices* for intermediate
  results,
* :mod:`repro.storage.page` -- slotted pages,
* :mod:`repro.storage.heapfile` -- extent-based record files with
  record identifiers and sequential scans,
* :mod:`repro.storage.btree` -- B+-tree indexes,
* :mod:`repro.storage.memory` -- the main-memory pool that hash tables,
  bit maps, and chain elements are charged against,
* :mod:`repro.storage.catalog` -- a name -> (file, schema) registry
  plus helpers to load :class:`~repro.relalg.relation.Relation` objects
  into files and back.
"""

from repro.storage.config import StorageConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.filedisk import FileBackedDisk
from repro.storage.stats import DeviceCounters, IoStatistics, IoWeights
from repro.storage.page import SlottedPage
from repro.storage.buffer import BufferPool
from repro.storage.memory import MemoryPool
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.btree import BPlusTree
from repro.storage.index import SecondaryIndex
from repro.storage.catalog import Catalog, StoredRelation

__all__ = [
    "StorageConfig",
    "SimulatedDisk",
    "FileBackedDisk",
    "IoWeights",
    "IoStatistics",
    "DeviceCounters",
    "SlottedPage",
    "BufferPool",
    "MemoryPool",
    "HeapFile",
    "RecordId",
    "BPlusTree",
    "SecondaryIndex",
    "Catalog",
    "StoredRelation",
]
