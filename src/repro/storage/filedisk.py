"""A file-backed simulated disk.

The paper's file system "simulates a disk using a UNIX file or main
memory" (Section 5.1).  :class:`FileBackedDisk` is the UNIX-file
variant: pages live at fixed offsets in one backing file, so data
survives the Python process and arbitrarily large devices need no
resident memory.  Cost accounting is identical to
:class:`~repro.storage.disk.SimulatedDisk` -- both inherit allocation,
validation, and the single statistics/classification path from
:class:`~repro.storage.diskbase.PagedDiskBase`, so the *model* charges
for seeks and transfers regardless of what the host filesystem does.

The class mirrors ``SimulatedDisk``'s interface exactly, so every
layer above (buffer pool, heap files, catalog) works on either device
unchanged; the test suite runs a shared contract test over both and a
Hypothesis parity test asserting identical statistics for identical
access sequences.
"""

from __future__ import annotations

import os

from repro.storage.diskbase import PagedDiskBase
from repro.storage.stats import IoStatistics


class FileBackedDisk(PagedDiskBase):
    """A page-addressed device backed by one file on the host FS.

    Args:
        name: Device name used in I/O statistics.
        page_size: Bytes per page / transfer unit.
        path: Backing file path; created (or truncated) on open.
        stats: Shared statistics collector.
        injector / retry_policy / backoff_clock: Optional
            :mod:`repro.faults` wiring, forwarded to
            :class:`~repro.storage.diskbase.PagedDiskBase`.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        path: str | os.PathLike,
        stats: IoStatistics | None = None,
        **fault_kwargs,
    ) -> None:
        super().__init__(name, page_size, stats, **fault_kwargs)
        self.path = os.fspath(path)
        self._file = open(self.path, "w+b")
        self._allocated = 0

    # -- physical-storage hooks ------------------------------------------

    def _capacity(self) -> int:
        return self._allocated

    def _grow(self, pages: int) -> int:
        first = self._allocated
        self._allocated += pages
        # Extend the backing file so reads past old EOF are well-defined.
        self._file.seek((self._allocated * self.page_size) - 1)
        self._file.write(b"\x00")
        return first

    def _read_raw(self, page_no: int) -> bytearray:
        self._file.seek(page_no * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return bytearray(data)

    def _write_raw(self, page_no: int, data: bytes) -> None:
        self._file.seek(page_no * self.page_size)
        self._file.write(data)

    def _release(self) -> None:
        self._file.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.page_count} pages"
        return f"<FileBackedDisk {self.name!r} at {self.path!r} {state}>"
