"""A file-backed simulated disk.

The paper's file system "simulates a disk using a UNIX file or main
memory" (Section 5.1).  :class:`FileBackedDisk` is the UNIX-file
variant: pages live at fixed offsets in one backing file, so data
survives the Python process and arbitrarily large devices need no
resident memory.  Cost accounting is identical to
:class:`~repro.storage.disk.SimulatedDisk` -- the *model* charges for
seeks and transfers regardless of what the host filesystem does.

The class mirrors ``SimulatedDisk``'s interface exactly, so every
layer above (buffer pool, heap files, catalog) works on either device
unchanged; the test suite runs a shared contract test over both.
"""

from __future__ import annotations

import os

from repro.errors import DiskError
from repro.storage.stats import IoStatistics


class FileBackedDisk:
    """A page-addressed device backed by one file on the host FS.

    Args:
        name: Device name used in I/O statistics.
        page_size: Bytes per page / transfer unit.
        path: Backing file path; created (or truncated) on open.
        stats: Shared statistics collector.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        path: str | os.PathLike,
        stats: IoStatistics | None = None,
    ) -> None:
        if page_size <= 0:
            raise DiskError("page_size must be positive")
        self.name = name
        self.page_size = page_size
        self.path = os.fspath(path)
        self.stats = stats if stats is not None else IoStatistics()
        self._file = open(self.path, "w+b")
        self._allocated = 0
        self._free: list[int] = []
        self._free_set: set[int] = set()
        self._closed = False

    # -- allocation (same contract as SimulatedDisk) ------------------

    @property
    def page_count(self) -> int:
        """Pages currently allocated (live, not freed)."""
        return self._allocated - len(self._free)

    def allocate_page(self) -> int:
        """Allocate one page (recycling freed pages LIFO)."""
        self._check_open()
        if self._free:
            page_no = self._free.pop()
            self._free_set.discard(page_no)
            return page_no
        page_no = self._allocated
        self._allocated += 1
        self._write_raw(page_no, bytes(self.page_size))
        return page_no

    def allocate_extent(self, pages: int) -> list[int]:
        """Allocate ``pages`` physically contiguous new pages."""
        self._check_open()
        if pages <= 0:
            raise DiskError("extent size must be positive")
        first = self._allocated
        self._allocated += pages
        self._file.seek((self._allocated * self.page_size) - 1)
        self._file.write(b"\x00")
        return list(range(first, first + pages))

    def free_page(self, page_no: int) -> None:
        """Return a page to the allocator (contents cleared)."""
        self._check_open()
        self._check_page(page_no)
        self._write_raw(page_no, bytes(self.page_size))
        self._free.append(page_no)
        self._free_set.add(page_no)

    # -- transfers ----------------------------------------------------------

    def read_page(self, page_no: int) -> bytearray:
        """Read one page (a copy), charging one model transfer."""
        self._check_open()
        self._check_page(page_no)
        self.stats.record_transfer(self.name, page_no, self.page_size, is_write=False)
        self._file.seek(page_no * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return bytearray(data)

    def write_page(self, page_no: int, data: bytes | bytearray | memoryview) -> None:
        """Write one full page, charging one model transfer."""
        self._check_open()
        self._check_page(page_no)
        if len(data) != self.page_size:
            raise DiskError(
                f"write of {len(data)} bytes to device {self.name!r} with "
                f"page size {self.page_size}"
            )
        self.stats.record_transfer(self.name, page_no, self.page_size, is_write=True)
        self._write_raw(page_no, bytes(data))

    def _write_raw(self, page_no: int, data: bytes) -> None:
        self._file.seek(page_no * self.page_size)
        self._file.write(data)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the backing file; further use raises."""
        if not self._closed:
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise DiskError(f"device {self.name!r} is closed")

    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self._allocated:
            raise DiskError(
                f"page {page_no} out of range on device {self.name!r} "
                f"({self._allocated} pages)"
            )
        if page_no in self._free_set:
            raise DiskError(f"page {page_no} on device {self.name!r} is free")

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.page_count} pages"
        return f"<FileBackedDisk {self.name!r} at {self.path!r} {state}>"
