"""Catalog: named stored relations, and the Relation <-> HeapFile bridge.

Experiments load in-memory :class:`~repro.relalg.relation.Relation`
objects into heap files once, cold, and then run metered plans over the
files.  The catalog owns that mapping: each stored relation pairs a
heap file with the schema (codec) that interprets its records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.relalg.relation import Relation
from repro.relalg.schema import RecordCodec, Schema
from repro.relalg.tuples import Row
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile, RecordId


@dataclass
class StoredRelation:
    """A heap file plus the schema of its records.

    ``version`` is a **monotonic write counter**: it starts at 0 when
    the relation is created and is bumped by every catalog-mediated
    write (the initial bulk load, :meth:`Catalog.insert_rows`,
    :meth:`Catalog.delete_rows`).  The serve layer's result cache keys
    cached quotients by the versions of every input relation, so a
    cached answer can *only* be returned while the inputs are
    byte-for-byte the relations it was computed from -- staleness is
    impossible by construction, no invalidation walk required.
    """

    name: str
    schema: Schema
    file: HeapFile
    codec: RecordCodec
    version: int = 0

    def bump_version(self) -> int:
        """Advance the write counter; returns the new version."""
        self.version += 1
        return self.version

    @property
    def record_count(self) -> int:
        """Tuples stored."""
        return self.file.record_count

    @property
    def page_count(self) -> int:
        """Data pages used -- the experimental analogue of the cost
        model's page cardinality."""
        return self.file.page_count

    def scan_rows(self) -> Iterator[tuple[RecordId, Row]]:
        """Sequential scan decoding each record into a tuple."""
        for rid, record in self.file.scan():
            yield rid, self.codec.decode(record)

    def to_relation(self) -> Relation:
        """Materialize the stored tuples back into a Relation."""
        return Relation(
            self.schema, (row for _, row in self.scan_rows()), name=self.name
        )


class Catalog:
    """Registry of stored relations on one buffered device.

    Args:
        pool: Buffer pool shared by all files.
        disk: Device the relations live on.
    """

    def __init__(self, pool: BufferPool, disk: SimulatedDisk) -> None:
        self.pool = pool
        self.disk = disk
        self._relations: dict[str, StoredRelation] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> tuple[str, ...]:
        """Stored relation names."""
        return tuple(self._relations)

    def get(self, name: str) -> StoredRelation:
        """Look up a stored relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise StorageError(f"no stored relation named {name!r}") from None

    def create(self, name: str, schema: Schema) -> StoredRelation:
        """Create an empty stored relation."""
        if name in self._relations:
            raise StorageError(f"relation {name!r} already exists")
        stored = StoredRelation(
            name=name,
            schema=schema,
            file=HeapFile(self.pool, self.disk, name=name),
            codec=schema.codec(),
        )
        self._relations[name] = stored
        return stored

    def store(self, relation: Relation, name: str | None = None, cold: bool = True) -> StoredRelation:
        """Write an in-memory relation to a heap file.

        Args:
            relation: Tuples and schema to store.
            name: Stored name; defaults to ``relation.name``.
            cold: Flush dirty pages and drop every buffered frame of
                the device afterwards, so a following scan pays real
                read I/O -- the state the paper's experiments start in.
        """
        stored_name = name or relation.name
        if not stored_name:
            raise StorageError("relation needs a name to be stored")
        stored = self.create(stored_name, relation.schema)
        encode = stored.codec.encode
        stored.file.append_many(encode(row) for row in relation)
        stored.bump_version()
        if cold:
            self.pool.flush_device(self.disk.name)
            self.pool.drop_device_pages(self.disk.name)
        return stored

    # -- versioned writes ----------------------------------------------

    def version(self, name: str) -> int:
        """The monotonic write-counter of one stored relation."""
        return self.get(name).version

    def versions_of(self, names: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """``((name, version), ...)`` sorted by name -- the snapshot
        component of a result-cache key."""
        return tuple(sorted((name, self.get(name).version) for name in set(names)))

    def insert_rows(self, name: str, rows: Iterable[Row]) -> int:
        """Append tuples to a stored relation; bumps its version.

        Returns the new version.  This (with :meth:`delete_rows`) is
        the *versioned* write path: writes that bypass the catalog and
        mutate the heap file directly do not participate in the serve
        layer's cache-invalidation contract.

        The version is bumped **even when the write fails** (a device
        fault mid-append may have applied a prefix of the rows): a
        failed write must still invalidate cached results, because the
        stored bytes may have changed.  A spurious bump only costs a
        cache miss; a missed bump would serve a stale quotient.
        """
        stored = self.get(name)
        encode = stored.codec.encode
        try:
            stored.file.append_many(encode(row) for row in rows)
        finally:
            stored.bump_version()
        return stored.version

    def delete_rows(self, name: str, keep) -> tuple[int, int]:
        """Delete every record whose decoded row fails ``keep(row)``.

        Returns ``(deleted_count, new_version)``.  The version is
        bumped even when nothing matched: the *write happened*, and a
        spurious bump only costs a cache miss -- the invariant
        ``same versions => same contents`` must never depend on
        predicate reasoning.
        """
        stored = self.get(name)
        deleted = 0
        try:
            victims = [
                rid for rid, row in stored.scan_rows() if not keep(row)
            ]
            for rid in victims:
                stored.file.delete(rid)
                deleted += 1
        finally:
            # Bump even on a failed/partial delete: see insert_rows.
            stored.bump_version()
        return deleted, stored.version

    def drop(self, name: str) -> None:
        """Delete a stored relation and free its pages."""
        stored = self.get(name)
        stored.file.destroy()
        del self._relations[name]
