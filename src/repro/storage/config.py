"""Storage configuration mirroring the paper's experimental setup.

Section 5.1 fixes the parameters this dataclass defaults to:

* transfer (page) size 8 KB, "except for sort runs where it was 1 KB to
  allow high fan-in",
* initial buffer size 256 KB, of which 100 KB may be used as sort
  buffer,
* the buffer pool "grows dynamically until the main memory pool is
  exhausted".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.stats import IoWeights

KIB = 1024
"""One kibibyte; the paper quotes sizes in KB."""


@dataclass(frozen=True)
class StorageConfig:
    """Physical parameters of the simulated storage stack.

    Attributes:
        page_size: Bytes per data page / I/O transfer (paper: 8 KB).
        sort_run_page_size: Bytes per page of sort-run temp files
            (paper: 1 KB, to allow high merge fan-in).
        buffer_size: Initial buffer-pool budget in bytes (paper: 256 KB).
        memory_limit: Hard ceiling the buffer pool may grow to; the
            paper's pool grows "until the main memory pool is
            exhausted".  Defaults to 4x the initial buffer.
        sort_buffer_size: Bytes of buffer usable by a sort operator for
            run generation (paper: 100 KB of the 256 KB).
        io_weights: Table 3 cost weights for converting I/O counters to
            model milliseconds.
    """

    page_size: int = 8 * KIB
    sort_run_page_size: int = 1 * KIB
    buffer_size: int = 256 * KIB
    memory_limit: int = 1024 * KIB
    sort_buffer_size: int = 100 * KIB
    io_weights: IoWeights = field(default_factory=IoWeights)

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.sort_run_page_size <= 0:
            raise StorageError("page sizes must be positive")
        if self.buffer_size < self.page_size:
            raise StorageError("buffer must hold at least one page")
        if self.memory_limit < self.buffer_size:
            raise StorageError("memory_limit must be >= buffer_size")
        if self.sort_buffer_size <= 0:
            raise StorageError("sort buffer must be positive")

    @property
    def buffer_frames(self) -> int:
        """Initial number of page frames in the buffer pool."""
        return self.buffer_size // self.page_size

    @property
    def sort_fan_in(self) -> int:
        """Maximum merge fan-in: sort-run pages that fit in the sort buffer."""
        return max(2, self.sort_buffer_size // self.sort_run_page_size)

    def sort_run_capacity_records(self, record_size: int) -> int:
        """Records of ``record_size`` bytes quick-sortable in one run.

        Run generation fills the sort buffer with records, sorts them
        in place, and writes one run -- so run length is the sort
        buffer capacity.
        """
        if record_size <= 0:
            raise StorageError("record_size must be positive")
        return max(1, self.sort_buffer_size // record_size)
