"""Extent-based record files with record identifiers and scans.

A :class:`HeapFile` is an append-oriented sequence of slotted pages on
one device.  Pages are allocated in physically contiguous *extents*
(the paper's file system is "extent-based", Section 5.1), so a full
sequential scan pays one seek per extent rather than one per page --
the property that lets hash-based algorithms benefit from "efficient
read-ahead of physically clustered or contiguous files" (Section 3.3).

Records are addressed by :class:`RecordId` (page number, slot).  All
page access goes through the buffer pool; a scan fixes one page at a
time and hands out record bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import PageError, RecordNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import SlottedPage

#: Pages allocated per extent.  Eight pages balances contiguity against
#: space waste for the paper's small divisor files.
DEFAULT_EXTENT_PAGES = 8


@dataclass(frozen=True, order=True)
class RecordId:
    """Stable address of one record: (page number, slot number)."""

    page_no: int
    slot: int

    def __repr__(self) -> str:
        return f"RID({self.page_no}.{self.slot})"


class HeapFile:
    """An append-oriented record file on one buffered device.

    Args:
        pool: Buffer pool all page access goes through.
        disk: Backing device (its ``stats`` collector sees the I/O).
        name: File name, for diagnostics.
        extent_pages: Pages per allocation extent.
    """

    def __init__(
        self,
        pool: BufferPool,
        disk: SimulatedDisk,
        name: str = "heap",
        extent_pages: int = DEFAULT_EXTENT_PAGES,
    ) -> None:
        if extent_pages <= 0:
            raise StorageError("extent_pages must be positive")
        self.pool = pool
        self.disk = disk
        self.name = name
        self.extent_pages = extent_pages
        self._pages: list[int] = []
        self._unused_extent_pages: list[int] = []
        self._record_count = 0
        self._destroyed = False

    # -- size ------------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Live records in the file."""
        return self._record_count

    @property
    def page_count(self) -> int:
        """Pages holding data (allocated-but-unused extent tail excluded)."""
        return len(self._pages)

    @property
    def page_numbers(self) -> tuple[int, ...]:
        """Data pages in scan order."""
        return tuple(self._pages)

    def __len__(self) -> int:
        return self._record_count

    # -- writes -----------------------------------------------------------

    def append(self, record: bytes) -> RecordId:
        """Append one record, returning its identifier."""
        self._check_live()
        if self._pages:
            last = self._pages[-1]
            view = self.pool.fix(self.disk.name, last)
            try:
                page = SlottedPage(view)
                if page.fits(len(record)):
                    slot = page.insert(record)
                    self.pool.unfix(self.disk.name, last, dirty=True)
                    self._record_count += 1
                    return RecordId(last, slot)
            except PageError:
                pass
            self.pool.unfix(self.disk.name, last)
        page_no = self._next_data_page()
        # Track the page as data *before* touching it again: if the fix
        # or insert below faults, destroy() must still find (and free)
        # the page or it leaks on the device.
        self._pages.append(page_no)
        view = self.pool.fix(self.disk.name, page_no)
        page = SlottedPage.format(view)
        slot = page.insert(record)
        self.pool.unfix(self.disk.name, page_no, dirty=True)
        self._record_count += 1
        return RecordId(page_no, slot)

    def append_many(self, records: Iterable[bytes]) -> int:
        """Append several records; returns how many were written."""
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    def delete(self, rid: RecordId) -> None:
        """Delete the record at ``rid`` (tombstoned, space not reused)."""
        self._check_live()
        if rid.page_no not in set(self._pages):
            raise RecordNotFoundError(f"{rid!r} is not a page of file {self.name!r}")
        view = self.pool.fix(self.disk.name, rid.page_no)
        try:
            SlottedPage(view).delete(rid.slot)
        finally:
            self.pool.unfix(self.disk.name, rid.page_no, dirty=True)
        self._record_count -= 1

    # -- reads ----------------------------------------------------------------

    def get(self, rid: RecordId) -> bytes:
        """Fetch one record by identifier (random access)."""
        self._check_live()
        view = self.pool.fix(self.disk.name, rid.page_no)
        try:
            return bytes(SlottedPage(view).get(rid.slot))
        finally:
            self.pool.unfix(self.disk.name, rid.page_no)

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Sequential scan yielding ``(rid, record_bytes)``.

        Pages are fixed one at a time in physical order, so a cold scan
        is charged as sequential I/O.
        """
        self._check_live()
        for page_no in self._pages:
            view = self.pool.fix(self.disk.name, page_no)
            try:
                page = SlottedPage(view)
                records = [(slot, bytes(record)) for slot, record in page.records()]
            finally:
                self.pool.unfix(self.disk.name, page_no)
            for slot, record in records:
                yield RecordId(page_no, slot), record

    # -- lifecycle --------------------------------------------------------------

    def flush(self) -> None:
        """Force all dirty pages of this file's device to disk."""
        self._check_live()
        self.pool.flush_device(self.disk.name)

    def destroy(self) -> None:
        """Delete the file: forget buffered pages, free disk pages.

        Dirty buffered pages are dropped *without* write-back -- a
        deleted temp file must not be charged disk writes for data
        nobody will read (this mirrors the paper's observation that
        short-lived temp pages often "remain in the buffer pool from
        run creation to merging and deletion", Section 5.2).
        """
        if self._destroyed:
            return
        trace = self.disk.stats.trace
        if trace.enabled:
            trace.forget_pages(
                self.disk.name, self._pages + self._unused_extent_pages
            )
        for page_no in self._pages + self._unused_extent_pages:
            self.pool.forget_page(self.disk.name, page_no)
            self.disk.free_page(page_no)
        self._pages.clear()
        self._unused_extent_pages.clear()
        self._record_count = 0
        self._destroyed = True

    # -- internals ----------------------------------------------------------------

    def _next_data_page(self) -> int:
        """Take the next page of the current extent, or allocate a new
        extent; the page is zero-filled and must be formatted."""
        if not self._unused_extent_pages:
            self._unused_extent_pages = self.disk.allocate_extent(self.extent_pages)
            # File attribution for page-level I/O tracing: register the
            # extent's pages as ours (a no-op on the null sink).
            trace = self.disk.stats.trace
            if trace.enabled:
                trace.register_pages(
                    self.disk.name, self._unused_extent_pages, self.name
                )
        # Peek, don't pop: fix_new may evict a dirty victim frame whose
        # write-back faults, and a page popped before that point would
        # belong to neither list -- invisible to destroy() and leaked
        # on the device (found by the chaos suite under injected
        # temp-device write faults).
        page_no = self._unused_extent_pages[0]
        # Install a zeroed frame for the fresh page so formatting does
        # not require reading garbage from disk.
        view = self.pool.fix_new(self.disk.name, page_no)
        self.pool.unfix(self.disk.name, page_no, dirty=True)
        self._unused_extent_pages.pop(0)
        return page_no

    def _check_live(self) -> None:
        if self._destroyed:
            raise StorageError(f"heap file {self.name!r} has been destroyed")

    def __repr__(self) -> str:
        return (
            f"<HeapFile {self.name!r} {self._record_count} records on "
            f"{len(self._pages)} pages of {self.disk.name!r}>"
        )
