"""B+-tree indexes.

The paper's file system lists B+-trees among its main services
(Section 5.1).  The division experiments themselves never probe an
index -- every algorithm scans its inputs sequentially -- but the
substrate would be incomplete without one, and the index-join variant
mentioned for the aggregation strategies (Section 2.2.1) needs it.

This is a classic order-``n`` B+-tree: interior nodes hold separator
keys and children; leaves hold (key, value) pairs and are chained for
range scans.  Keys are arbitrary orderable tuples, values are opaque
(typically :class:`~repro.storage.heapfile.RecordId`).  Duplicate keys
are rejected -- secondary indexes append the RID to the key to make it
unique, which :meth:`BPlusTree.insert_multi` automates.

Every key comparison can be metered into a
:class:`~repro.metering.CpuCounters` so index costs are visible in the
same units as everything else.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import BTreeError
from repro.metering import CpuCounters

DEFAULT_ORDER = 64
"""Default maximum children per interior node."""


@dataclass
class BTreeStats:
    """Structural-maintenance and access counters for one tree.

    Surfaced through the ``repro_btree_*`` metrics families (see
    :func:`repro.obs.metrics.absorb_btree`), so index maintenance cost
    is visible in the same place as buffer and I/O activity.

    Attributes:
        searches: Point lookups performed.
        inserts: Successful insertions.
        deletes: Successful deletions.
        leaf_splits: Leaf nodes split during insertion.
        interior_splits: Interior nodes split during insertion.
        leaf_scans: Range/items scans initiated.
        leaves_visited: Leaf nodes walked by those scans.
    """

    searches: int = 0
    inserts: int = 0
    deletes: int = 0
    leaf_splits: int = 0
    interior_splits: int = 0
    leaf_scans: int = 0
    leaves_visited: int = 0


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[Any] = []
        self.next: "_Leaf | None" = None


class _Interior(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []


class BPlusTree:
    """An in-memory B+-tree with chained leaves.

    Args:
        order: Maximum number of children of an interior node (also the
            maximum number of entries in a leaf).  Must be at least 3.
        cpu: Optional counters; every key comparison performed while
            descending or splitting is charged as one ``Comp``.
    """

    def __init__(self, order: int = DEFAULT_ORDER, cpu: CpuCounters | None = None) -> None:
        if order < 3:
            raise BTreeError(f"order must be >= 3, got {order}")
        self.order = order
        self.cpu = cpu
        #: Structural/access counters (:class:`BTreeStats`); absorbed
        #: into ``repro_btree_*`` metrics by
        #: :func:`repro.obs.metrics.absorb_btree`.
        self.stats = BTreeStats()
        self._root: _Node = _Leaf()
        self._size = 0
        self._height = 1

    # -- observers --------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels in the tree (1 = a single leaf)."""
        return self._height

    def __contains__(self, key: Any) -> bool:
        return self.search(key) is not None

    # -- search ------------------------------------------------------------

    def _charge(self, comparisons: int) -> None:
        if self.cpu is not None:
            self.cpu.comparisons += comparisons

    def _bisect_cost(self, length: int) -> int:
        return max(1, length.bit_length())

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Interior):
            self._charge(self._bisect_cost(len(node.keys)))
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node  # type: ignore[return-value]

    def search(self, key: Any) -> Any | None:
        """Return the value stored under ``key``, or ``None``."""
        self.stats.searches += 1
        leaf = self._find_leaf(key)
        self._charge(self._bisect_cost(len(leaf.keys)))
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def range(self, low: Any = None, high: Any = None) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` for ``low <= key <= high`` in order.

        ``None`` bounds are open.
        """
        self.stats.leaf_scans += 1
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            self._charge(self._bisect_cost(len(leaf.keys)))
            index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            self.stats.leaves_visited += 1
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None and key > high:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order."""
        return self.range()

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Interior):
            node = node.children[0]
        return node  # type: ignore[return-value]

    # -- insertion -------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert a unique key.

        Raises:
            BTreeError: when ``key`` is already present.
        """
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Interior()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1
        self.stats.inserts += 1

    def insert_multi(self, key: tuple, value: Any) -> None:
        """Insert a possibly duplicate key by appending the value to it.

        Stores under the composite key ``key + (value,)``, the standard
        trick for secondary indexes over non-unique attributes.
        """
        self.insert(tuple(key) + (value,), value)

    def _insert(self, node: _Node, key: Any, value: Any) -> tuple[Any, _Node] | None:
        if isinstance(node, _Leaf):
            self._charge(self._bisect_cost(len(node.keys)))
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise BTreeError(f"duplicate key {key!r}")
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node)
        assert isinstance(node, _Interior)
        self._charge(self._bisect_cost(len(node.keys)))
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) <= self.order:
            return None
        return self._split_interior(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        self.stats.leaf_splits += 1
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_interior(self, node: _Interior) -> tuple[Any, _Interior]:
        self.stats.interior_splits += 1
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Interior()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # -- deletion ----------------------------------------------------------------

    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value.

        Raises:
            BTreeError: when ``key`` is absent.
        """
        value = self._delete(self._root, key)
        if isinstance(self._root, _Interior) and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        self._size -= 1
        self.stats.deletes += 1
        return value

    def _min_entries(self) -> int:
        return self.order // 2

    def _delete(self, node: _Node, key: Any) -> Any:
        if isinstance(node, _Leaf):
            self._charge(self._bisect_cost(len(node.keys)))
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise BTreeError(f"key {key!r} not found")
            node.keys.pop(index)
            return node.values.pop(index)
        assert isinstance(node, _Interior)
        self._charge(self._bisect_cost(len(node.keys)))
        index = bisect.bisect_right(node.keys, key)
        value = self._delete(node.children[index], key)
        self._rebalance_child(node, index)
        return value

    def _entry_count(self, node: _Node) -> int:
        if isinstance(node, _Leaf):
            return len(node.keys)
        return len(node.children)  # type: ignore[attr-defined]

    def _rebalance_child(self, parent: _Interior, index: int) -> None:
        child = parent.children[index]
        if self._entry_count(child) >= self._min_entries():
            return
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if left is not None and self._entry_count(left) > self._min_entries():
            self._borrow_from_left(parent, index)
        elif right is not None and self._entry_count(right) > self._min_entries():
            self._borrow_from_right(parent, index)
        elif left is not None:
            self._merge_children(parent, index - 1)
        elif right is not None:
            self._merge_children(parent, index)

    def _borrow_from_left(self, parent: _Interior, index: int) -> None:
        child = parent.children[index]
        left = parent.children[index - 1]
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            assert isinstance(left, _Interior) and isinstance(child, _Interior)
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Interior, index: int) -> None:
        child = parent.children[index]
        right = parent.children[index + 1]
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            assert isinstance(right, _Interior) and isinstance(child, _Interior)
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge_children(self, parent: _Interior, index: int) -> None:
        """Merge child ``index+1`` into child ``index``."""
        left = parent.children[index]
        right = parent.children[index + 1]
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Interior) and isinstance(right, _Interior)
            left.keys.append(parent.keys[index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(index)
        parent.children.pop(index + 1)

    # -- bulk load --------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: Iterator[tuple[Any, Any]] | list[tuple[Any, Any]],
        order: int = DEFAULT_ORDER,
        cpu: CpuCounters | None = None,
    ) -> "BPlusTree":
        """Build a tree from *sorted, unique* (key, value) pairs.

        Leaves are packed left to right at ~2/3 fill, then interior
        levels are built bottom-up -- the standard bulk-load that avoids
        per-key descents.

        Raises:
            BTreeError: when the input is unsorted or has duplicates.
        """
        tree = cls(order=order, cpu=cpu)
        fill = max(2, (2 * order) // 3)
        leaves: list[_Leaf] = []
        previous_key: Any = None
        current = _Leaf()
        count = 0
        for key, value in items:
            if previous_key is not None:
                if cpu is not None:
                    cpu.comparisons += 1
                if key <= previous_key:
                    raise BTreeError("bulk_load input must be sorted and unique")
            previous_key = key
            if len(current.keys) >= fill:
                leaves.append(current)
                nxt = _Leaf()
                current.next = nxt
                current = nxt
            current.keys.append(key)
            current.values.append(value)
            count += 1
        leaves.append(current)
        if count == 0:
            return tree
        tree._size = count
        level: list[_Node] = list(leaves)
        separators = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            parent_separators: list[Any] = []
            for start in range(0, len(level), fill):
                group = level[start : start + fill]
                node = _Interior()
                node.children = group
                node.keys = separators[start + 1 : start + len(group)]
                parents.append(node)
                parent_separators.append(separators[start])
            level = parents
            separators = parent_separators
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree
