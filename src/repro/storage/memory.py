"""The main-memory manager.

The paper's hash algorithms "use the file system's memory manager to
allocate space for hash tables, bit maps, and chain elements"
(Section 5.1).  :class:`MemoryPool` is that manager: a byte-budgeted
allocator that the hash-division operator charges for every divisor
entry, quotient candidate, chain element, and bit map.

Exhausting the pool raises
:class:`~repro.errors.MemoryPoolError`; the single-phase hash operators
translate that into
:class:`~repro.errors.HashTableOverflowError`, which the partitioned
driver in :mod:`repro.core.partitioned` handles by switching to
multi-phase processing (Section 3.4).

No real memory is reserved -- the pool is an accounting device that
makes the simulated experiments respect the paper's memory limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryPoolError

#: Bookkeeping bytes charged per hash-table chain element: next pointer,
#: record identifier, buffer address, and the divisor number or bit-map
#: pointer (Section 5.1 lists exactly these fields).
CHAIN_ELEMENT_BYTES = 32

#: Bytes charged per hash-table bucket header (the bucket array slot).
BUCKET_HEADER_BYTES = 8


@dataclass
class Allocation:
    """A live allocation: its size and a tag naming its purpose."""

    size: int
    tag: str


@dataclass
class MemoryPoolStats:
    """Aggregate allocation statistics for one pool."""

    peak_bytes: int = 0
    total_allocations: int = 0
    by_tag: dict = field(default_factory=dict)


class MemoryPool:
    """A byte-budgeted allocator with tagged allocations.

    Args:
        budget: Maximum live bytes; ``None`` means unbounded (useful
            for oracles and tests that should never overflow).
    """

    def __init__(self, budget: int | None = None) -> None:
        if budget is not None and budget <= 0:
            raise MemoryPoolError("memory budget must be positive (or None)")
        self.budget = budget
        self.stats = MemoryPoolStats()
        #: Optional :class:`repro.faults.injector.FaultInjector`; when
        #: set, every allocation is offered to it first (``exhaust``
        #: raises :class:`MemoryPoolError`, ``pressure`` shrinks the
        #: budget via :meth:`apply_pressure`).
        self.injector = None
        #: Times :meth:`apply_pressure` shrank the budget.
        self.pressure_events = 0
        self._live: dict[int, Allocation] = {}
        self._next_handle = 0
        self._in_use = 0

    @property
    def bytes_in_use(self) -> int:
        """Currently allocated bytes."""
        return self._in_use

    @property
    def bytes_free(self) -> int | None:
        """Remaining budget, or ``None`` when unbounded."""
        if self.budget is None:
            return None
        return self.budget - self._in_use

    def can_allocate(self, size: int) -> bool:
        """True when an allocation of ``size`` bytes would succeed."""
        return self.budget is None or self._in_use + size <= self.budget

    def allocate(self, size: int, tag: str = "untagged") -> int:
        """Reserve ``size`` bytes; returns a handle for :meth:`free`.

        Raises:
            MemoryPoolError: when the allocation would exceed the budget.
        """
        if size < 0:
            raise MemoryPoolError(f"allocation size must be >= 0, got {size}")
        if self.injector is not None:
            self.injector.on_memory_allocate(self, size, tag)
        if not self.can_allocate(size):
            raise MemoryPoolError(
                f"memory pool exhausted: {self._in_use} bytes in use, "
                f"{size} requested ({tag}), budget {self.budget}"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = Allocation(size, tag)
        self._in_use += size
        self.stats.total_allocations += 1
        self.stats.by_tag[tag] = self.stats.by_tag.get(tag, 0) + size
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._in_use)
        return handle

    def apply_pressure(self, factor: float) -> int:
        """Shrink the budget to ``factor`` of its effective size.

        Models an external memory squeeze (another query, the OS): the
        new budget may fall *below* the bytes already in use, in which
        case live allocations survive but future ones overflow -- which
        is exactly what drives the hash operators into their
        spill / partitioned degradation paths instead of aborting.

        Returns the new budget in bytes.
        """
        if not 0.0 < factor <= 1.0:
            raise MemoryPoolError(f"pressure factor must be in (0, 1], got {factor}")
        effective = self.budget if self.budget is not None else max(1, self._in_use)
        self.budget = max(1, int(effective * factor))
        self.pressure_events += 1
        return self.budget

    def free(self, handle: int) -> None:
        """Release one allocation."""
        allocation = self._live.pop(handle, None)
        if allocation is None:
            raise MemoryPoolError(f"handle {handle} is not a live allocation")
        self._in_use -= allocation.size

    def free_all(self, tag: str | None = None) -> int:
        """Release every live allocation (optionally only one tag).

        Returns the number of bytes released.  Operators use this to
        tear down a whole hash table ("free divisor table", Figure 1)
        in one call.
        """
        victims = [
            handle
            for handle, allocation in self._live.items()
            if tag is None or allocation.tag == tag
        ]
        released = 0
        for handle in victims:
            released += self._live.pop(handle).size
        self._in_use -= released
        return released

    def __repr__(self) -> str:
        cap = "unbounded" if self.budget is None else f"{self.budget}B"
        return f"<MemoryPool {self._in_use}B in use of {cap}>"
