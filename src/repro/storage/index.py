"""Secondary indexes over stored relations.

The paper's file system offers B+-trees, and Section 2.2.1 lists
"index join" among the join methods available to the aggregation
strategies.  A :class:`SecondaryIndex` maps key-attribute values to the
record identifiers of a heap file; non-unique keys are handled by
appending the RID to the key (the tree itself stays unique).

Probing charges tree-descent comparisons to the context's counters;
fetching the indexed rows goes through the buffer pool, so random
record access is priced as random I/O when the page is cold.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import StorageError
from repro.metering import CpuCounters
from repro.relalg.tuples import Row, projector
from repro.storage.btree import BPlusTree
from repro.storage.catalog import StoredRelation
from repro.storage.heapfile import RecordId

#: Sentinels sorting below/above every real RID in composite keys.
_LOW = RecordId(-1, -1)
_HIGH = RecordId(2**31, 2**31)


class SecondaryIndex:
    """A B+-tree index on some attributes of a stored relation.

    Args:
        stored: The indexed relation.
        key_names: Indexed attributes, in key order.
        cpu: Counter sink for tree comparisons.
        order: B+-tree node order.
    """

    def __init__(
        self,
        stored: StoredRelation,
        key_names: Sequence[str],
        cpu: CpuCounters | None = None,
        order: int = 64,
    ) -> None:
        if not key_names:
            raise StorageError("an index needs at least one key attribute")
        self.stored = stored
        self.key_names = tuple(key_names)
        self._key_of = projector(stored.schema, self.key_names)
        self._tree = BPlusTree(order=order, cpu=cpu)
        self._size = 0

    @classmethod
    def build(
        cls,
        stored: StoredRelation,
        key_names: Sequence[str],
        cpu: CpuCounters | None = None,
        order: int = 64,
    ) -> "SecondaryIndex":
        """Scan the relation once and index every record."""
        index = cls(stored, key_names, cpu=cpu, order=order)
        for rid, row in stored.scan_rows():
            index.insert(row, rid)
        return index

    def __len__(self) -> int:
        return self._size

    # -- maintenance ------------------------------------------------------

    def insert(self, row: Row, rid: RecordId) -> None:
        """Index one record (duplicate key values are fine)."""
        self._tree.insert(self._key_of(row) + (rid,), rid)
        self._size += 1

    def delete(self, row: Row, rid: RecordId) -> None:
        """Remove one record's entry."""
        self._tree.delete(self._key_of(row) + (rid,))
        self._size -= 1

    # -- probing -------------------------------------------------------------

    def probe(self, key: tuple) -> list[RecordId]:
        """All RIDs whose key attributes equal ``key``."""
        key = tuple(key)
        return [
            rid for _composite, rid in self._tree.range(key + (_LOW,), key + (_HIGH,))
        ]

    def contains(self, key: tuple) -> bool:
        """True when at least one record has this key."""
        key = tuple(key)
        for _entry in self._tree.range(key + (_LOW,), key + (_HIGH,)):
            return True
        return False

    def fetch(self, key: tuple) -> Iterator[Row]:
        """Decode the rows matching ``key`` (random record access)."""
        codec = self.stored.codec
        for rid in self.probe(key):
            yield codec.decode(self.stored.file.get(rid))

    def scan_keys(self) -> Iterator[tuple]:
        """Distinct key values in key order (an ordered index scan)."""
        previous: tuple | None = None
        for composite, _rid in self._tree.items():
            key = composite[:-1]
            if key != previous:
                previous = key
                yield key

    def __repr__(self) -> str:
        return (
            f"<SecondaryIndex on {self.stored.name}({', '.join(self.key_names)}) "
            f"with {self._size} entries>"
        )
