"""A page-addressed simulated disk.

The paper's file system "simulates a disk using a UNIX file or main
memory" (Section 5.1).  :class:`SimulatedDisk` is the main-memory
variant: a growable array of fixed-size pages.  Every read and write is
reported to :class:`~repro.storage.stats.IoStatistics`, which charges
seeks for non-sequential access and per-transfer latency/bandwidth per
Table 3.

A disk knows nothing about records or files; extents and slotted pages
are layered on top by :mod:`repro.storage.heapfile`.
"""

from __future__ import annotations

from repro.errors import DiskError
from repro.storage.stats import IoStatistics


class SimulatedDisk:
    """A named device holding an array of fixed-size pages.

    Args:
        name: Device name used in I/O statistics (e.g. ``"data"``,
            ``"temp"``).
        page_size: Bytes per page; this is also the transfer unit, so a
            temp device for 1 KB sort runs is simply a disk with
            ``page_size=1024``.
        stats: Shared statistics collector; pass the execution
            context's collector so all devices report to one place.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        stats: IoStatistics | None = None,
    ) -> None:
        if page_size <= 0:
            raise DiskError("page_size must be positive")
        self.name = name
        self.page_size = page_size
        self.stats = stats if stats is not None else IoStatistics()
        self._pages: list[bytearray] = []
        self._free: list[int] = []
        self._free_set: set[int] = set()
        self._closed = False

    # -- allocation -----------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages currently allocated (live, not freed)."""
        return len(self._pages) - len(self._free)

    def allocate_page(self) -> int:
        """Allocate one page and return its page number.

        Freed pages are recycled in LIFO order before the device grows,
        so temp files reuse space the way an extent allocator would.
        Allocation itself performs no I/O (and charges none); cost is
        incurred when the page is written or read.
        """
        self._check_open()
        if self._free:
            page_no = self._free.pop()
            self._free_set.discard(page_no)
            return page_no
        self._pages.append(bytearray(self.page_size))
        return len(self._pages) - 1

    def allocate_extent(self, pages: int) -> list[int]:
        """Allocate ``pages`` physically contiguous new pages.

        Contiguity matters to the cost model: sequential access within
        an extent pays only one seek.  Extents never recycle the free
        list, guaranteeing physical adjacency.
        """
        self._check_open()
        if pages <= 0:
            raise DiskError("extent size must be positive")
        first = len(self._pages)
        for _ in range(pages):
            self._pages.append(bytearray(self.page_size))
        return list(range(first, first + pages))

    def free_page(self, page_no: int) -> None:
        """Return a page to the allocator (its contents are cleared)."""
        self._check_open()
        self._check_page(page_no)
        self._pages[page_no] = bytearray(self.page_size)
        self._free.append(page_no)
        self._free_set.add(page_no)

    # -- transfers --------------------------------------------------------

    def read_page(self, page_no: int) -> bytearray:
        """Read one page; returns a *copy* of its contents.

        Charges one transfer (plus a seek when non-sequential) to the
        statistics collector.
        """
        self._check_open()
        self._check_page(page_no)
        self.stats.record_transfer(self.name, page_no, self.page_size, is_write=False)
        return bytearray(self._pages[page_no])

    def write_page(self, page_no: int, data: bytes | bytearray | memoryview) -> None:
        """Write one full page.

        Charges one transfer (plus a seek when non-sequential).
        """
        self._check_open()
        self._check_page(page_no)
        if len(data) != self.page_size:
            raise DiskError(
                f"write of {len(data)} bytes to device {self.name!r} with "
                f"page size {self.page_size}"
            )
        self._pages[page_no] = bytearray(data)
        self.stats.record_transfer(self.name, page_no, self.page_size, is_write=True)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release all pages; further use raises :class:`DiskError`."""
        self._pages.clear()
        self._free.clear()
        self._free_set.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise DiskError(f"device {self.name!r} is closed")

    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < len(self._pages):
            raise DiskError(
                f"page {page_no} out of range on device {self.name!r} "
                f"({len(self._pages)} pages)"
            )
        if page_no in self._free_set:
            raise DiskError(f"page {page_no} on device {self.name!r} is free")

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.page_count} pages"
        return f"<SimulatedDisk {self.name!r} page_size={self.page_size} {state}>"
