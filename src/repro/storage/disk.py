"""A page-addressed simulated disk.

The paper's file system "simulates a disk using a UNIX file or main
memory" (Section 5.1).  :class:`SimulatedDisk` is the main-memory
variant: a growable array of fixed-size pages.  Every read and write is
reported to :class:`~repro.storage.stats.IoStatistics`, which charges
seeks for non-sequential access and per-transfer latency/bandwidth per
Table 3.

Allocation, validation, and the accounting path live in the shared
:class:`~repro.storage.diskbase.PagedDiskBase`; this class only stores
bytes.  A disk knows nothing about records or files; extents and
slotted pages are layered on top by :mod:`repro.storage.heapfile`.
"""

from __future__ import annotations

from repro.storage.diskbase import PagedDiskBase
from repro.storage.stats import IoStatistics


class SimulatedDisk(PagedDiskBase):
    """A named device holding an in-memory array of fixed-size pages.

    Args:
        name: Device name used in I/O statistics (e.g. ``"data"``,
            ``"temp"``).
        page_size: Bytes per page; this is also the transfer unit, so a
            temp device for 1 KB sort runs is simply a disk with
            ``page_size=1024``.
        stats: Shared statistics collector; pass the execution
            context's collector so all devices report to one place.
        injector / retry_policy / backoff_clock: Optional
            :mod:`repro.faults` wiring, forwarded to
            :class:`~repro.storage.diskbase.PagedDiskBase`.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        stats: IoStatistics | None = None,
        **fault_kwargs,
    ) -> None:
        super().__init__(name, page_size, stats, **fault_kwargs)
        self._pages: list[bytearray] = []

    # -- physical-storage hooks ------------------------------------------

    def _capacity(self) -> int:
        return len(self._pages)

    def _grow(self, pages: int) -> int:
        first = len(self._pages)
        for _ in range(pages):
            self._pages.append(bytearray(self.page_size))
        return first

    def _read_raw(self, page_no: int) -> bytearray:
        return bytearray(self._pages[page_no])

    def _write_raw(self, page_no: int, data: bytes) -> None:
        self._pages[page_no] = bytearray(data)

    def _release(self) -> None:
        self._pages.clear()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.page_count} pages"
        return f"<SimulatedDisk {self.name!r} page_size={self.page_size} {state}>"
