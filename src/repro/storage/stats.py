"""I/O statistics and the Table 3 cost weights.

The paper does not time the disk; it *computes* I/O cost from
statistics collected by the file system (Section 5.1) using the weights
of Table 3:

========================  ======
Physical seek on device    20 ms
Rotational latency         8 ms per transfer
Transfer time              0.5 ms per KByte
CPU cost per transfer      2 ms
========================  ======

The simulated disk feeds :class:`IoStatistics` one event per physical
page transfer; :meth:`IoStatistics.cost_ms` applies the weights.  A
*seek* is charged whenever a transfer is not physically sequential with
the previous transfer on the same device, which is how read-ahead of
"physically clustered or contiguous files" (Section 3.3) earns its
advantage in this model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IoWeights:
    """Table 3: milliseconds charged per I/O event."""

    seek_ms: float = 20.0
    latency_ms_per_transfer: float = 8.0
    transfer_ms_per_kib: float = 0.5
    cpu_ms_per_transfer: float = 2.0


@dataclass
class DeviceCounters:
    """Raw I/O counters for one simulated device."""

    reads: int = 0
    writes: int = 0
    seeks: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def transfers(self) -> int:
        """Total physical transfers (reads + writes)."""
        return self.reads + self.writes

    @property
    def bytes_total(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written


class IoStatistics:
    """Per-device I/O accounting with Table 3 costing.

    One instance is shared by every simulated disk in an execution
    context; devices report each transfer via :meth:`record_transfer`.
    Sequentiality is tracked per device: a transfer at page ``p`` is
    sequential if the device's previous transfer ended at page ``p``.
    """

    def __init__(self, weights: IoWeights | None = None) -> None:
        self.weights = weights or IoWeights()
        self._devices: dict[str, DeviceCounters] = {}
        self._next_sequential_page: dict[str, int] = {}

    def counters(self, device: str) -> DeviceCounters:
        """Counters for ``device`` (created on first use)."""
        if device not in self._devices:
            self._devices[device] = DeviceCounters()
        return self._devices[device]

    @property
    def devices(self) -> dict[str, DeviceCounters]:
        """All per-device counters keyed by device name."""
        return dict(self._devices)

    def record_transfer(
        self,
        device: str,
        page_no: int,
        page_bytes: int,
        is_write: bool,
    ) -> None:
        """Record one physical page transfer.

        Args:
            device: Device name.
            page_no: Page number transferred.
            page_bytes: Size of the transfer in bytes.
            is_write: True for a write, False for a read.
        """
        counters = self.counters(device)
        if self._next_sequential_page.get(device) != page_no:
            counters.seeks += 1
        self._next_sequential_page[device] = page_no + 1
        if is_write:
            counters.writes += 1
            counters.bytes_written += page_bytes
        else:
            counters.reads += 1
            counters.bytes_read += page_bytes

    # -- costing -------------------------------------------------------

    def totals(self) -> DeviceCounters:
        """Counters summed over every device."""
        total = DeviceCounters()
        for counters in self._devices.values():
            total.reads += counters.reads
            total.writes += counters.writes
            total.seeks += counters.seeks
            total.bytes_read += counters.bytes_read
            total.bytes_written += counters.bytes_written
        return total

    def cost_ms(self, device: str | None = None) -> float:
        """Model I/O time in ms per the Table 3 weights.

        Args:
            device: Restrict to one device; ``None`` sums all devices.
        """
        counters = self.totals() if device is None else self.counters(device)
        w = self.weights
        return (
            counters.seeks * w.seek_ms
            + counters.transfers * (w.latency_ms_per_transfer + w.cpu_ms_per_transfer)
            + (counters.bytes_total / 1024) * w.transfer_ms_per_kib
        )

    def snapshot(self) -> dict[str, DeviceCounters]:
        """Deep copy of current counters (for before/after deltas)."""
        return {
            name: DeviceCounters(
                c.reads, c.writes, c.seeks, c.bytes_read, c.bytes_written
            )
            for name, c in self._devices.items()
        }

    def cost_since(self, snapshot: dict[str, DeviceCounters]) -> float:
        """Model I/O ms accumulated since ``snapshot`` was taken."""
        w = self.weights
        total = 0.0
        for name, now in self._devices.items():
            then = snapshot.get(name, DeviceCounters())
            seeks = now.seeks - then.seeks
            transfers = now.transfers - then.transfers
            bytes_moved = now.bytes_total - then.bytes_total
            total += (
                seeks * w.seek_ms
                + transfers * (w.latency_ms_per_transfer + w.cpu_ms_per_transfer)
                + (bytes_moved / 1024) * w.transfer_ms_per_kib
            )
        return total

    def reset(self) -> None:
        """Forget all counters and sequentiality state."""
        self._devices.clear()
        self._next_sequential_page.clear()
