"""I/O statistics and the Table 3 cost weights.

The paper does not time the disk; it *computes* I/O cost from
statistics collected by the file system (Section 5.1) using the weights
of Table 3:

========================  ======
Physical seek on device    20 ms
Rotational latency         8 ms per transfer
Transfer time              0.5 ms per KByte
CPU cost per transfer      2 ms
========================  ======

The simulated disk feeds :class:`IoStatistics` one event per physical
page transfer; :meth:`IoStatistics.cost_ms` applies the weights.  A
*seek* is charged whenever a transfer is not physically sequential with
the previous transfer on the same device, which is how read-ahead of
"physically clustered or contiguous files" (Section 3.3) earns its
advantage in this model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IoWeights:
    """Table 3: milliseconds charged per I/O event."""

    seek_ms: float = 20.0
    latency_ms_per_transfer: float = 8.0
    transfer_ms_per_kib: float = 0.5
    cpu_ms_per_transfer: float = 2.0

    def event_cost_ms(self, nbytes: int, seek: bool) -> float:
        """Table 3 cost of one physical transfer of ``nbytes``.

        This is the per-event form of :meth:`IoStatistics.cost_ms`:
        summing it over every recorded transfer reproduces the
        aggregate exactly (same weights, same formula), which is what
        the :mod:`repro.obs.iotrace` conservation validator checks.
        """
        return (
            (self.seek_ms if seek else 0.0)
            + self.latency_ms_per_transfer
            + self.cpu_ms_per_transfer
            + (nbytes / 1024) * self.transfer_ms_per_kib
        )


# -- seek/sequential classification (the one shared path) --------------
#
# Both simulated devices (:class:`repro.storage.disk.SimulatedDisk` and
# :class:`repro.storage.filedisk.FileBackedDisk`) report transfers
# through :meth:`IoStatistics.record_transfer`, which classifies them
# with these helpers -- there is exactly one definition of "what counts
# as a seek" in the system, and the disk-parity property test pins both
# devices to it.


def is_sequential(expected_next: int | None, page_no: int) -> bool:
    """A transfer is sequential iff it lands where the head already is.

    Args:
        expected_next: Page the device head would reach without moving
            (``None`` when the device has never been touched).
        page_no: Page actually transferred.
    """
    return expected_next == page_no


def seek_distance_pages(expected_next: int | None, page_no: int) -> int:
    """Pages of head movement charged for a transfer.

    Zero for a sequential transfer; for the first transfer on a device
    the arm is modelled as parked at page 0.
    """
    if expected_next == page_no:
        return 0
    if expected_next is None:
        return page_no
    return abs(page_no - expected_next)


class _NullIoTraceSink:
    """Default no-op event sink for :class:`IoStatistics`.

    The real ring-buffer log lives in :mod:`repro.obs.iotrace`; this
    stub keeps the storage layer import-free of ``repro.obs`` and makes
    the disabled path one attribute test (``trace.enabled``) with zero
    allocations -- the tests monkeypatch :meth:`record` to *raise* and
    run a full workload to prove the fast path never enters here.
    """

    __slots__ = ()

    enabled = False

    def record(
        self,
        device: str,
        page_no: int,
        nbytes: int,
        is_write: bool,
        sequential: bool,
        seek_distance: int,
        cost_ms: float,
    ) -> None:
        """Discard the event."""

    def register_pages(self, device: str, pages, file: str) -> None:
        """Discard the page-ownership registration."""

    def forget_pages(self, device: str, pages) -> None:
        """Discard the page-ownership removal."""

    def clear(self) -> None:
        """Nothing to clear."""


#: Process-wide shared no-op I/O event sink (stateless, safe to share).
NULL_IO_TRACE = _NullIoTraceSink()


@dataclass
class DeviceCounters:
    """Raw I/O counters for one simulated device."""

    reads: int = 0
    writes: int = 0
    seeks: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def transfers(self) -> int:
        """Total physical transfers (reads + writes)."""
        return self.reads + self.writes

    @property
    def bytes_total(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written


class IoStatistics:
    """Per-device I/O accounting with Table 3 costing.

    One instance is shared by every simulated disk in an execution
    context; devices report each transfer via :meth:`record_transfer`.
    Sequentiality is tracked per device: a transfer at page ``p`` is
    sequential if the device's previous transfer ended at page ``p``.
    """

    def __init__(self, weights: IoWeights | None = None, trace=None) -> None:
        self.weights = weights or IoWeights()
        #: Event sink fed one record per physical transfer.  The no-op
        #: default costs one attribute test per transfer; attach a
        #: :class:`repro.obs.iotrace.IoEventLog` for page-level tracing.
        self.trace = NULL_IO_TRACE if trace is None else trace
        self._devices: dict[str, DeviceCounters] = {}
        self._next_sequential_page: dict[str, int] = {}

    def counters(self, device: str) -> DeviceCounters:
        """Counters for ``device`` (created on first use)."""
        if device not in self._devices:
            self._devices[device] = DeviceCounters()
        return self._devices[device]

    @property
    def devices(self) -> dict[str, DeviceCounters]:
        """All per-device counters keyed by device name."""
        return dict(self._devices)

    def record_transfer(
        self,
        device: str,
        page_no: int,
        page_bytes: int,
        is_write: bool,
    ) -> None:
        """Record one physical page transfer.

        Args:
            device: Device name.
            page_no: Page number transferred.
            page_bytes: Size of the transfer in bytes.
            is_write: True for a write, False for a read.
        """
        counters = self.counters(device)
        expected = self._next_sequential_page.get(device)
        sequential = is_sequential(expected, page_no)
        if not sequential:
            counters.seeks += 1
        self._next_sequential_page[device] = page_no + 1
        if is_write:
            counters.writes += 1
            counters.bytes_written += page_bytes
        else:
            counters.reads += 1
            counters.bytes_read += page_bytes
        trace = self.trace
        if trace.enabled:
            trace.record(
                device,
                page_no,
                page_bytes,
                is_write,
                sequential,
                seek_distance_pages(expected, page_no),
                self.weights.event_cost_ms(page_bytes, not sequential),
            )

    # -- costing -------------------------------------------------------

    def totals(self) -> DeviceCounters:
        """Counters summed over every device."""
        total = DeviceCounters()
        for counters in self._devices.values():
            total.reads += counters.reads
            total.writes += counters.writes
            total.seeks += counters.seeks
            total.bytes_read += counters.bytes_read
            total.bytes_written += counters.bytes_written
        return total

    def cost_ms(self, device: str | None = None) -> float:
        """Model I/O time in ms per the Table 3 weights.

        Args:
            device: Restrict to one device; ``None`` sums all devices.
        """
        counters = self.totals() if device is None else self.counters(device)
        w = self.weights
        return (
            counters.seeks * w.seek_ms
            + counters.transfers * (w.latency_ms_per_transfer + w.cpu_ms_per_transfer)
            + (counters.bytes_total / 1024) * w.transfer_ms_per_kib
        )

    def snapshot(self) -> dict[str, DeviceCounters]:
        """Deep copy of current counters (for before/after deltas)."""
        return {
            name: DeviceCounters(
                c.reads, c.writes, c.seeks, c.bytes_read, c.bytes_written
            )
            for name, c in self._devices.items()
        }

    def cost_since(self, snapshot: dict[str, DeviceCounters]) -> float:
        """Model I/O ms accumulated since ``snapshot`` was taken."""
        w = self.weights
        total = 0.0
        for name, now in self._devices.items():
            then = snapshot.get(name, DeviceCounters())
            seeks = now.seeks - then.seeks
            transfers = now.transfers - then.transfers
            bytes_moved = now.bytes_total - then.bytes_total
            total += (
                seeks * w.seek_ms
                + transfers * (w.latency_ms_per_transfer + w.cpu_ms_per_transfer)
                + (bytes_moved / 1024) * w.transfer_ms_per_kib
            )
        return total

    def reset(self) -> None:
        """Forget all counters and sequentiality state."""
        self._devices.clear()
        self._next_sequential_page.clear()
