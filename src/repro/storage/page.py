"""Slotted data pages.

A slotted page stores variable-length records addressed by slot number,
so a record identifier (page number, slot) stays valid while other
records on the page come and go.  Layout::

    +--------+---------------------+              +------------------+
    | header | record record ...   | free space   | slot dir (grows  |
    | 4 B    | (grows upward)      |              |  downward)       |
    +--------+---------------------+              +------------------+

Header: ``slot_count`` (u16) and ``free_offset`` (u16, start of free
space).  Each slot directory entry holds the record's ``offset`` and
``length`` (u16 each); a deleted slot has offset ``0xFFFF``.

The page operates directly on a caller-supplied ``bytearray`` -- in
practice a buffer-pool frame -- so record accessors hand out
``memoryview`` slices of buffer memory without copying, matching the
paper's file system where "copying is avoided as scans give memory
addresses to records fixed in the buffer pool" (Section 5.1).
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import PageError, RecordNotFoundError

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_TOMBSTONE = 0xFFFF

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


class SlottedPage:
    """A slotted-page view over a ``bytearray`` buffer.

    The constructor interprets existing bytes; use :meth:`format` to
    initialize a fresh page.
    """

    __slots__ = ("_buf", "page_size")

    def __init__(self, buf: bytearray | memoryview, page_size: int | None = None) -> None:
        self._buf = buf if isinstance(buf, memoryview) else memoryview(buf)
        self.page_size = page_size if page_size is not None else len(self._buf)
        if len(self._buf) < self.page_size:
            raise PageError("buffer smaller than declared page size")
        if self.page_size < HEADER_SIZE + SLOT_SIZE:
            raise PageError(f"page size {self.page_size} too small for slotted layout")

    # -- header access ---------------------------------------------------

    @classmethod
    def format(cls, buf: bytearray | memoryview, page_size: int | None = None) -> "SlottedPage":
        """Initialize ``buf`` as an empty slotted page and return it."""
        page = cls(buf, page_size)
        _HEADER.pack_into(page._buf, 0, 0, HEADER_SIZE)
        return page

    @property
    def slot_count(self) -> int:
        """Slots in the directory, including tombstones."""
        return _HEADER.unpack_from(self._buf, 0)[0]

    @property
    def _free_offset(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[1]

    def _set_header(self, slot_count: int, free_offset: int) -> None:
        _HEADER.pack_into(self._buf, 0, slot_count, free_offset)

    def _slot_position(self, slot: int) -> int:
        return self.page_size - (slot + 1) * SLOT_SIZE

    def _read_slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise RecordNotFoundError(f"slot {slot} out of range (count={self.slot_count})")
        return _SLOT.unpack_from(self._buf, self._slot_position(slot))

    # -- capacity ------------------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes available for one more record *and* its slot entry."""
        directory_start = self.page_size - self.slot_count * SLOT_SIZE
        gap = directory_start - self._free_offset
        return max(0, gap - SLOT_SIZE)

    def fits(self, record_size: int) -> bool:
        """True when a record of ``record_size`` bytes can be inserted."""
        return record_size <= self.free_space

    @property
    def record_count(self) -> int:
        """Live (non-deleted) records on the page."""
        return sum(
            1 for slot in range(self.slot_count) if self._read_slot(slot)[0] != _TOMBSTONE
        )

    @classmethod
    def capacity_for(cls, page_size: int, record_size: int) -> int:
        """Records of ``record_size`` bytes that fit on an empty page."""
        usable = page_size - HEADER_SIZE
        return max(0, usable // (record_size + SLOT_SIZE))

    # -- record operations -----------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert ``record`` and return its slot number.

        Raises:
            PageError: when the record does not fit (callers check
                :meth:`fits` or handle the error by allocating a new
                page).
        """
        length = len(record)
        if length >= _TOMBSTONE:
            raise PageError(f"record of {length} bytes exceeds slotted-page limit")
        if not self.fits(length):
            raise PageError(
                f"record of {length} bytes does not fit ({self.free_space} free)"
            )
        slot_count, free_offset = _HEADER.unpack_from(self._buf, 0)
        slot = slot_count
        self._buf[free_offset : free_offset + length] = record
        _SLOT.pack_into(self._buf, self._slot_position(slot), free_offset, length)
        self._set_header(slot_count + 1, free_offset + length)
        return slot

    def get(self, slot: int) -> memoryview:
        """Zero-copy view of the record in ``slot``.

        Raises:
            RecordNotFoundError: for out-of-range or deleted slots.
        """
        offset, length = self._read_slot(slot)
        if offset == _TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot} is deleted")
        return self._buf[offset : offset + length]

    def delete(self, slot: int) -> None:
        """Tombstone the record in ``slot`` (space is not compacted)."""
        offset, _length = self._read_slot(slot)
        if offset == _TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot} is already deleted")
        _SLOT.pack_into(self._buf, self._slot_position(slot), _TOMBSTONE, 0)

    def records(self) -> Iterator[tuple[int, memoryview]]:
        """Iterate ``(slot, record_view)`` over live records in slot order."""
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if offset != _TOMBSTONE:
                yield slot, self._buf[offset : offset + length]

    def __repr__(self) -> str:
        return (
            f"<SlottedPage {self.record_count}/{self.slot_count} records, "
            f"{self.free_space} bytes free>"
        )
