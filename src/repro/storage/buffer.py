"""The buffer manager.

Models the paper's buffer pool (Section 5.1):

* pages are *fixed* in the pool and accessed by memory address (here, a
  ``memoryview``); copying is avoided,
* an *unfix* call indicates whether the page can be replaced
  immediately (``discard=True``) or should be inserted into an LRU
  list,
* the pool "grows dynamically until the main memory pool is exhausted,
  and shrinks as buffer slots are unfixed": fixing more pages than the
  configured buffer size is allowed up to ``memory_limit``; once pages
  are unfixed, the pool evicts back down to its configured size,
* *virtual devices* hold intermediate results: their pages live only in
  the pool, are never written to disk, and disappear once unfixed and
  evicted.

Physical I/O happens only on a buffer miss (read) and on eviction or
flush of a dirty page (write), which is how the experimental runs where
"the entire dividend relation fits into the buffer" (Section 5.2)
naturally incur no sort I/O in the Table 4 reproduction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import BufferPoolError, StorageError
from repro.storage.config import StorageConfig
from repro.storage.disk import SimulatedDisk

PageKey = tuple[str, int]
"""(device name, page number)"""


@dataclass
class _Frame:
    data: bytearray
    fix_count: int = 0
    dirty: bool = False


@dataclass
class _VirtualDevice:
    """A device with no backing disk; pages exist only in the pool."""

    name: str
    page_size: int
    next_page: int = 0
    live_pages: set = field(default_factory=set)


@dataclass
class DeviceBufferCounters:
    """Buffer-pool activity against one device."""

    fixes: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        """Fixes served from the pool without physical I/O."""
        return self.fixes - self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of fixes served without physical I/O."""
        return 0.0 if self.fixes == 0 else 1.0 - self.misses / self.fixes


@dataclass
class BufferPoolStats:
    """Logical access statistics (hits/misses), for reporting only.

    Global counters plus a per-device breakdown (``by_device``), so the
    ``repro_buffer_*`` metrics can say not just *that* the pool missed
    but *against which device* -- the paper's Table 4 analysis hinges
    on whether the dividend (``data``) or the sort runs (``runs``)
    caused the physical I/O.
    """

    fixes: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    by_device: dict = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Fixes served from the pool without physical I/O."""
        return self.fixes - self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of fixes served without physical I/O."""
        return 0.0 if self.fixes == 0 else 1.0 - self.misses / self.fixes

    def device(self, name: str) -> DeviceBufferCounters:
        """Counters for one device (created on first use)."""
        counters = self.by_device.get(name)
        if counters is None:
            counters = self.by_device[name] = DeviceBufferCounters()
        return counters


class BufferPool:
    """Fix/unfix buffer manager over one or more simulated devices.

    Args:
        config: Sizes and growth limits.
    """

    def __init__(self, config: StorageConfig | None = None) -> None:
        self.config = config or StorageConfig()
        self.stats = BufferPoolStats()
        #: Optional observer hook ``callable(event, device, page_no)``
        #: invoked on ``"fix"`` / ``"miss"`` / ``"unfix"`` /
        #: ``"eviction"`` / ``"writeback"`` events.  ``None`` (the
        #: default) costs one comparison per event site; see
        #: :func:`repro.obs.metrics.observe_buffer_pool` for a wiring
        #: that streams events into a metrics registry.
        self.observer = None
        self._disks: dict[str, SimulatedDisk] = {}
        self._virtuals: dict[str, _VirtualDevice] = {}
        self._frames: dict[PageKey, _Frame] = {}
        self._lru: OrderedDict[PageKey, None] = OrderedDict()
        self._bytes_in_use = 0

    # -- accounting helpers --------------------------------------------

    def _count_fix(self, device: str, page_no: int) -> None:
        self.stats.fixes += 1
        self.stats.device(device).fixes += 1
        if self.observer is not None:
            self.observer("fix", device, page_no)

    def _count_miss(self, device: str, page_no: int) -> None:
        self.stats.misses += 1
        self.stats.device(device).misses += 1
        if self.observer is not None:
            self.observer("miss", device, page_no)

    def _count_eviction(self, device: str, page_no: int) -> None:
        self.stats.evictions += 1
        self.stats.device(device).evictions += 1
        if self.observer is not None:
            self.observer("eviction", device, page_no)

    def _count_writeback(self, device: str, page_no: int) -> None:
        self.stats.writebacks += 1
        self.stats.device(device).writebacks += 1
        if self.observer is not None:
            self.observer("writeback", device, page_no)

    # -- device registry -----------------------------------------------

    def register_device(self, disk: SimulatedDisk) -> SimulatedDisk:
        """Attach a simulated disk so its pages can be buffered."""
        if disk.name in self._disks or disk.name in self._virtuals:
            raise StorageError(f"device name {disk.name!r} already registered")
        self._disks[disk.name] = disk
        return disk

    def create_virtual_device(self, name: str, page_size: int | None = None) -> str:
        """Create a virtual (pool-only) device and return its name."""
        if name in self._disks or name in self._virtuals:
            raise StorageError(f"device name {name!r} already registered")
        self._virtuals[name] = _VirtualDevice(
            name, page_size or self.config.page_size
        )
        return name

    def is_virtual(self, device: str) -> bool:
        """True when ``device`` is a virtual (pool-only) device."""
        return device in self._virtuals

    def page_size_of(self, device: str) -> int:
        """Page size of a registered device."""
        if device in self._disks:
            return self._disks[device].page_size
        if device in self._virtuals:
            return self._virtuals[device].page_size
        raise StorageError(f"unknown device {device!r}")

    # -- memory accounting -----------------------------------------------

    @property
    def bytes_in_use(self) -> int:
        """Bytes of pool memory currently holding page frames."""
        return self._bytes_in_use

    def fixed_page_count(self) -> int:
        """Frames with a non-zero fix count."""
        return sum(1 for f in self._frames.values() if f.fix_count > 0)

    # -- page lifecycle --------------------------------------------------

    def new_page(self, device: str) -> tuple[int, memoryview]:
        """Allocate a fresh page on ``device``, fixed and zeroed.

        Returns ``(page_no, writable view)``.  The frame starts dirty
        for disk devices so it reaches the disk on eviction or flush.
        """
        page_size = self.page_size_of(device)
        if device in self._virtuals:
            vdev = self._virtuals[device]
            page_no = vdev.next_page
            vdev.next_page += 1
            vdev.live_pages.add(page_no)
            frame = self._install(device, page_no, bytearray(page_size))
        else:
            page_no = self._disks[device].allocate_page()
            frame = self._install(device, page_no, bytearray(page_size))
            frame.dirty = True
        frame.fix_count = 1
        self._count_fix(device, page_no)
        return page_no, memoryview(frame.data)

    def fix_new(self, device: str, page_no: int) -> memoryview:
        """Fix a freshly allocated disk page without reading it.

        The caller guarantees ``page_no`` was just allocated (its disk
        contents are zeroed), so installing a zeroed frame is
        equivalent to -- and cheaper than -- a physical read.
        """
        key = (device, page_no)
        if key in self._frames:
            return self.fix(device, page_no)
        if device in self._virtuals:
            raise StorageError("fix_new is for disk devices; virtual pages use new_page")
        self._count_fix(device, page_no)
        frame = self._install(device, page_no, bytearray(self.page_size_of(device)))
        frame.fix_count = 1
        return memoryview(frame.data)

    def fix(self, device: str, page_no: int) -> memoryview:
        """Fix a page in the pool, reading it from disk on a miss.

        Returns a writable view of the frame.  Call :meth:`unfix`
        exactly once per successful fix.
        """
        key = (device, page_no)
        self._count_fix(device, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            frame.fix_count += 1
            if key in self._lru:
                del self._lru[key]
            return memoryview(frame.data)
        self._count_miss(device, page_no)
        if device in self._virtuals:
            vdev = self._virtuals[device]
            if page_no in vdev.live_pages:
                raise BufferPoolError(
                    f"virtual page ({device!r}, {page_no}) was evicted and is lost"
                )
            raise BufferPoolError(f"unknown virtual page ({device!r}, {page_no})")
        if device not in self._disks:
            raise StorageError(f"unknown device {device!r}")
        data = self._disks[device].read_page(page_no)
        frame = self._install(device, page_no, data)
        frame.fix_count = 1
        return memoryview(frame.data)

    def unfix(self, device: str, page_no: int, dirty: bool = False, discard: bool = False) -> None:
        """Release one fix on a page.

        Args:
            device: Device name.
            page_no: Page number.
            dirty: Mark the frame modified so eviction writes it back
                (ignored for virtual devices, which have no backing).
            discard: Hint that the page "can be replaced immediately"
                (Section 5.1): once its fix count reaches zero the frame
                is dropped at once -- written back first if dirty and
                disk-backed, simply forgotten if virtual.
        """
        key = (device, page_no)
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(f"page ({device!r}, {page_no}) is not fixed")
        if frame.fix_count <= 0:
            # The frame is resident but fully released: an unbalanced
            # fix/unfix in the caller, distinct from unfixing a page
            # that was never brought in at all.
            raise BufferPoolError(
                f"double unfix of page ({device!r}, {page_no}): "
                "frame is resident but its fix count is already zero"
            )
        if dirty:
            frame.dirty = True
        frame.fix_count -= 1
        if self.observer is not None:
            self.observer("unfix", device, page_no)
        if frame.fix_count > 0:
            return
        if discard:
            self._drop(key, frame, write_back=not self.is_virtual(device))
        else:
            self._lru[key] = None
        self._shrink_to_target()

    # -- maintenance ---------------------------------------------------------

    def flush_device(self, device: str) -> None:
        """Write back every dirty frame of a disk device (keeps frames)."""
        if device in self._virtuals:
            return
        disk = self._disks[device]
        for (dev, page_no), frame in self._frames.items():
            if dev == device and frame.dirty:
                disk.write_page(page_no, frame.data)
                frame.dirty = False
                self._count_writeback(device, page_no)

    def forget_page(self, device: str, page_no: int) -> None:
        """Drop one unfixed frame without write-back (dead data).

        Used when a file page is freed: its contents are dead, so a
        dirty frame must not be charged as a disk write.  A frame that
        is still fixed raises; an absent frame is a no-op.
        """
        key = (device, page_no)
        frame = self._frames.get(key)
        if frame is None:
            if device in self._virtuals:
                self._virtuals[device].live_pages.discard(page_no)
            return
        if frame.fix_count > 0:
            raise BufferPoolError(f"page ({device!r}, {page_no}) is still fixed")
        self._frames.pop(key)
        self._lru.pop(key, None)
        self._bytes_in_use -= len(frame.data)
        if device in self._virtuals:
            self._virtuals[device].live_pages.discard(page_no)

    def drop_device_pages(self, device: str, discard_dirty: bool = False) -> None:
        """Evict every unfixed frame of ``device`` (a cache drop).

        Dirty disk-backed frames are written back first so no data is
        lost -- this is how experiments cool the cache between setup
        and measurement.  Pass ``discard_dirty=True`` only when the
        device's buffered contents are known dead (virtual frames are
        always simply forgotten; per-page dead-data release for files
        being destroyed uses :meth:`forget_page` instead).
        """
        victims = [
            key
            for key, frame in self._frames.items()
            if key[0] == device and frame.fix_count == 0
        ]
        for key in victims:
            frame = self._frames.pop(key)
            self._lru.pop(key, None)
            self._bytes_in_use -= len(frame.data)
            if key[0] in self._virtuals:
                self._virtuals[key[0]].live_pages.discard(key[1])
            elif frame.dirty and not discard_dirty:
                self._disks[device].write_page(key[1], frame.data)
                self._count_writeback(device, key[1])

    # -- internals ------------------------------------------------------------

    def _install(self, device: str, page_no: int, data: bytearray) -> _Frame:
        page_size = len(data)
        self._make_room(page_size)
        frame = _Frame(data=data)
        self._frames[(device, page_no)] = frame
        self._bytes_in_use += page_size
        return frame

    def _make_room(self, needed: int) -> None:
        limit = self.config.memory_limit
        while self._bytes_in_use + needed > limit and self._lru:
            self._evict_one()
        if self._bytes_in_use + needed > limit:
            raise BufferPoolError(
                f"buffer pool exhausted: {self._bytes_in_use} bytes fixed, "
                f"{needed} more requested, limit {limit}"
            )

    def _shrink_to_target(self) -> None:
        target = self.config.buffer_size
        while self._bytes_in_use > target and self._lru:
            self._evict_one()

    def _evict_one(self) -> None:
        key, _ = self._lru.popitem(last=False)
        frame = self._frames[key]
        self._drop(key, frame, write_back=True)
        self._count_eviction(key[0], key[1])

    def _drop(self, key: PageKey, frame: _Frame, write_back: bool) -> None:
        device, page_no = key
        if device in self._virtuals:
            self._virtuals[device].live_pages.discard(page_no)
        elif write_back and frame.dirty:
            self._disks[device].write_page(page_no, frame.data)
            self._count_writeback(device, page_no)
        self._frames.pop(key, None)
        self._lru.pop(key, None)
        self._bytes_in_use -= len(frame.data)
