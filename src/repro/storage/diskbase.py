"""Shared device machinery for the two simulated disks.

:class:`repro.storage.disk.SimulatedDisk` (main-memory pages) and
:class:`repro.storage.filedisk.FileBackedDisk` (one UNIX backing file)
are the paper's two disk simulations (Section 5.1).  They must be
*indistinguishable to the cost model*: the same access sequence has to
produce identical :class:`~repro.storage.stats.IoStatistics` -- the
same transfers, the same seek classifications, the same Table 3
milliseconds -- no matter which backing holds the bytes.

Historically each class carried its own copy of the allocation
bookkeeping, page validation, write-size check, and statistics
reporting, which is exactly the kind of duplication that lets the two
cost accounts drift.  :class:`PagedDiskBase` now owns all of it; the
subclasses implement only the physical byte storage via four hooks
(:meth:`~PagedDiskBase._capacity`, :meth:`~PagedDiskBase._grow`,
:meth:`~PagedDiskBase._read_raw`, :meth:`~PagedDiskBase._write_raw`).
Every transfer funnels through :meth:`PagedDiskBase._account`, the one
shared classification path into
:meth:`~repro.storage.stats.IoStatistics.record_transfer` (and, when
tracing is enabled, into the :mod:`repro.obs.iotrace` event log).  A
Hypothesis parity test drives both devices with random access
sequences and asserts counter-for-counter equality.
"""

from __future__ import annotations

from repro.errors import DiskError
from repro.storage.stats import IoStatistics


class PagedDiskBase:
    """Common allocation, validation, and I/O accounting for devices.

    Args:
        name: Device name used in I/O statistics (e.g. ``"data"``,
            ``"temp"``).
        page_size: Bytes per page; this is also the transfer unit.
        stats: Shared statistics collector; pass the execution
            context's collector so all devices report to one place.

    Freed pages are recycled in LIFO order before the device grows, so
    temp files reuse space the way an extent allocator would.  Extents
    never recycle the free list, guaranteeing physical adjacency --
    contiguity matters to the cost model because sequential access
    within an extent pays only one seek.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        stats: IoStatistics | None = None,
    ) -> None:
        if page_size <= 0:
            raise DiskError("page_size must be positive")
        self.name = name
        self.page_size = page_size
        self.stats = stats if stats is not None else IoStatistics()
        self._free: list[int] = []
        self._free_set: set[int] = set()
        self._closed = False

    # -- allocation -----------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages currently allocated (live, not freed)."""
        return self._capacity() - len(self._free)

    def allocate_page(self) -> int:
        """Allocate one page and return its page number.

        Allocation itself performs no I/O (and charges none); cost is
        incurred when the page is written or read.
        """
        self._check_open()
        if self._free:
            page_no = self._free.pop()
            self._free_set.discard(page_no)
            return page_no
        return self._grow(1)

    def allocate_extent(self, pages: int) -> list[int]:
        """Allocate ``pages`` physically contiguous new pages."""
        self._check_open()
        if pages <= 0:
            raise DiskError("extent size must be positive")
        first = self._grow(pages)
        return list(range(first, first + pages))

    def free_page(self, page_no: int) -> None:
        """Return a page to the allocator (its contents are cleared)."""
        self._check_open()
        self._check_page(page_no)
        self._write_raw(page_no, bytes(self.page_size))
        self._free.append(page_no)
        self._free_set.add(page_no)

    # -- transfers --------------------------------------------------------

    def read_page(self, page_no: int) -> bytearray:
        """Read one page; returns a *copy* of its contents.

        Charges one transfer (plus a seek when non-sequential) to the
        statistics collector.
        """
        self._check_open()
        self._check_page(page_no)
        self._account(page_no, is_write=False)
        return self._read_raw(page_no)

    def write_page(self, page_no: int, data: bytes | bytearray | memoryview) -> None:
        """Write one full page.

        Charges one transfer (plus a seek when non-sequential).
        """
        self._check_open()
        self._check_page(page_no)
        if len(data) != self.page_size:
            raise DiskError(
                f"write of {len(data)} bytes to device {self.name!r} with "
                f"page size {self.page_size}"
            )
        self._account(page_no, is_write=True)
        self._write_raw(page_no, bytes(data))

    def _account(self, page_no: int, is_write: bool) -> None:
        """The one shared accounting/classification path.

        Every physical transfer of every device passes through here
        into :meth:`~repro.storage.stats.IoStatistics.record_transfer`,
        which classifies it as sequential or seek and (when tracing is
        on) emits one :class:`repro.obs.iotrace.IoEvent`.
        """
        self.stats.record_transfer(self.name, page_no, self.page_size, is_write)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the device; further use raises :class:`DiskError`."""
        if not self._closed:
            self._release()
            self._free.clear()
            self._free_set.clear()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise DiskError(f"device {self.name!r} is closed")

    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self._capacity():
            raise DiskError(
                f"page {page_no} out of range on device {self.name!r} "
                f"({self._capacity()} pages)"
            )
        if page_no in self._free_set:
            raise DiskError(f"page {page_no} on device {self.name!r} is free")

    # -- physical-storage hooks (subclass responsibilities) ---------------

    def _capacity(self) -> int:
        """Pages ever allocated (live plus freed)."""
        raise NotImplementedError

    def _grow(self, pages: int) -> int:
        """Extend the device by ``pages`` zeroed pages; return the first
        new page number."""
        raise NotImplementedError

    def _read_raw(self, page_no: int) -> bytearray:
        """Fetch one page's bytes (a copy), without accounting."""
        raise NotImplementedError

    def _write_raw(self, page_no: int, data: bytes) -> None:
        """Store one page's bytes, without accounting."""
        raise NotImplementedError

    def _release(self) -> None:
        """Free the physical backing (called once, from :meth:`close`)."""
        raise NotImplementedError
