"""Shared device machinery for the two simulated disks.

:class:`repro.storage.disk.SimulatedDisk` (main-memory pages) and
:class:`repro.storage.filedisk.FileBackedDisk` (one UNIX backing file)
are the paper's two disk simulations (Section 5.1).  They must be
*indistinguishable to the cost model*: the same access sequence has to
produce identical :class:`~repro.storage.stats.IoStatistics` -- the
same transfers, the same seek classifications, the same Table 3
milliseconds -- no matter which backing holds the bytes.

Historically each class carried its own copy of the allocation
bookkeeping, page validation, write-size check, and statistics
reporting, which is exactly the kind of duplication that lets the two
cost accounts drift.  :class:`PagedDiskBase` now owns all of it; the
subclasses implement only the physical byte storage via four hooks
(:meth:`~PagedDiskBase._capacity`, :meth:`~PagedDiskBase._grow`,
:meth:`~PagedDiskBase._read_raw`, :meth:`~PagedDiskBase._write_raw`).
Every transfer funnels through :meth:`PagedDiskBase._account`, the one
shared classification path into
:meth:`~repro.storage.stats.IoStatistics.record_transfer` (and, when
tracing is enabled, into the :mod:`repro.obs.iotrace` event log).  A
Hypothesis parity test drives both devices with random access
sequences and asserts counter-for-counter equality.

Faults and defenses
-------------------

The base class is also where the :mod:`repro.faults` machinery plugs
in, so both disk simulations misbehave (and defend) identically:

* An optional :class:`~repro.faults.injector.FaultInjector` is
  consulted once per transfer.  It can raise transient or permanent
  :class:`~repro.errors.DiskFaultError`\\ s, corrupt the page image
  (a flipped bit in the returned copy, or in the stored image when
  ``persistent``), tear a write (first half durable, rest lost), or
  add model latency.  Without an injector the hot path pays one
  ``is None`` test and allocates nothing.
* Every :meth:`write_page` records a CRC32 of the *intended* bytes in
  a sidecar; every :meth:`read_page` verifies it when present, raising
  :class:`~repro.errors.ChecksumError` on mismatch -- the defense that
  turns silent corruption into a typed error.
* Transient faults and checksum failures are retried under a
  :class:`~repro.faults.retry.RetryPolicy` with capped exponential
  backoff on a deterministic :class:`~repro.faults.retry.BackoffClock`.
  Each retry re-issues the transfer through :meth:`_account`, so the
  Table 3 meters and the :mod:`repro.obs.iotrace` conservation checks
  see retried I/O as ordinary, fully accounted I/O; only the backoff
  *wait* is kept off the cost meters (on the clock and the
  :class:`DeviceFaultStats`), because it is queueing delay, not disk
  work.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ChecksumError, DiskError, DiskFaultError
from repro.faults.retry import DEFAULT_RETRY_POLICY, BackoffClock, RetryPolicy
from repro.storage.stats import IoStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector, _DiskFault


@dataclass
class DeviceFaultStats:
    """Per-device fault / defense counters (model-time, off the cost meters).

    Attributes:
        faults_injected: Total disk faults the injector fired at this
            device (all kinds).
        transient_faults: Injected transient :class:`DiskFaultError`\\ s.
        permanent_faults: Injected permanent :class:`DiskFaultError`\\ s.
        corruptions: Injected bit flips (returned-copy or stored-image).
        torn_writes: Injected torn (partial) writes.
        checksum_failures: CRC32 mismatches detected on read.
        retries: Transfers re-issued after a transient failure.
        backoff_ms: Model milliseconds spent in retry backoff.
        latency_ms: Model milliseconds of injected device latency.
    """

    faults_injected: int = 0
    transient_faults: int = 0
    permanent_faults: int = 0
    corruptions: int = 0
    torn_writes: int = 0
    checksum_failures: int = 0
    retries: int = 0
    backoff_ms: float = 0.0
    latency_ms: float = 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.faults_injected = 0
        self.transient_faults = 0
        self.permanent_faults = 0
        self.corruptions = 0
        self.torn_writes = 0
        self.checksum_failures = 0
        self.retries = 0
        self.backoff_ms = 0.0
        self.latency_ms = 0.0

    def to_dict(self) -> dict:
        """JSON-ready counter snapshot (for metrics and chaos reports)."""
        return {
            "faults_injected": self.faults_injected,
            "transient_faults": self.transient_faults,
            "permanent_faults": self.permanent_faults,
            "corruptions": self.corruptions,
            "torn_writes": self.torn_writes,
            "checksum_failures": self.checksum_failures,
            "retries": self.retries,
            "backoff_ms": self.backoff_ms,
            "latency_ms": self.latency_ms,
        }


def _flip_bit(data: bytes, bit: int) -> bytes:
    """Return ``data`` with one bit flipped (index modulo the image size)."""
    if not data:
        return data
    bit %= len(data) * 8
    flipped = bytearray(data)
    flipped[bit // 8] ^= 1 << (bit % 8)
    return bytes(flipped)


class PagedDiskBase:
    """Common allocation, validation, and I/O accounting for devices.

    Args:
        name: Device name used in I/O statistics (e.g. ``"data"``,
            ``"temp"``).
        page_size: Bytes per page; this is also the transfer unit.
        stats: Shared statistics collector; pass the execution
            context's collector so all devices report to one place.

    Freed pages are recycled in LIFO order before the device grows, so
    temp files reuse space the way an extent allocator would.  Extents
    never recycle the free list, guaranteeing physical adjacency --
    contiguity matters to the cost model because sequential access
    within an extent pays only one seek.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        stats: IoStatistics | None = None,
        *,
        injector: "FaultInjector | None" = None,
        retry_policy: RetryPolicy | None = None,
        backoff_clock: BackoffClock | None = None,
    ) -> None:
        if page_size <= 0:
            raise DiskError("page_size must be positive")
        self.name = name
        self.page_size = page_size
        self.stats = stats if stats is not None else IoStatistics()
        self.injector = injector
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self.backoff_clock = backoff_clock if backoff_clock is not None else BackoffClock()
        self.fault_stats = DeviceFaultStats()
        self._checksums: dict[int, int] = {}
        self._free: list[int] = []
        self._free_set: set[int] = set()
        self._closed = False

    def attach_faults(
        self,
        injector: "FaultInjector | None",
        retry_policy: RetryPolicy | None = None,
        backoff_clock: BackoffClock | None = None,
    ) -> None:
        """Attach (or detach, with ``None``) a fault injector.

        Optionally replaces the retry policy and backoff clock at the
        same time, so an execution context can share one clock across
        all its devices.
        """
        self.injector = injector
        if retry_policy is not None:
            self.retry_policy = retry_policy
        if backoff_clock is not None:
            self.backoff_clock = backoff_clock

    # -- allocation -----------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages currently allocated (live, not freed)."""
        return self._capacity() - len(self._free)

    def allocate_page(self) -> int:
        """Allocate one page and return its page number.

        Allocation itself performs no I/O (and charges none); cost is
        incurred when the page is written or read.
        """
        self._check_open()
        if self._free:
            page_no = self._free.pop()
            self._free_set.discard(page_no)
            return page_no
        return self._grow(1)

    def allocate_extent(self, pages: int) -> list[int]:
        """Allocate ``pages`` physically contiguous new pages."""
        self._check_open()
        if pages <= 0:
            raise DiskError("extent size must be positive")
        first = self._grow(pages)
        return list(range(first, first + pages))

    def free_page(self, page_no: int) -> None:
        """Return a page to the allocator (its contents are cleared).

        Cleanup writes bypass both accounting and fault injection: a
        failing device must never be able to block resource release,
        or the chaos invariant "all run files destroyed on error"
        could not hold.
        """
        self._check_open()
        self._check_page(page_no)
        self._write_raw(page_no, bytes(self.page_size))
        self._checksums.pop(page_no, None)
        self._free.append(page_no)
        self._free_set.add(page_no)

    # -- transfers --------------------------------------------------------

    def read_page(self, page_no: int) -> bytearray:
        """Read one page; returns a *copy* of its contents.

        Charges one transfer (plus a seek when non-sequential) to the
        statistics collector.  When the page carries a checksum it is
        verified; on a fault-injected device, transient faults and
        checksum mismatches are retried under the device's
        :class:`~repro.faults.retry.RetryPolicy` before the typed
        error propagates.
        """
        self._check_open()
        self._check_page(page_no)
        if self.injector is None:
            self._account(page_no, is_write=False)
            data = self._read_raw(page_no)
            self._verify_checksum(page_no, data)
            return data
        return self._retry_transfer(self._read_attempt, page_no)

    def write_page(self, page_no: int, data: bytes | bytearray | memoryview) -> None:
        """Write one full page.

        Charges one transfer (plus a seek when non-sequential).  The
        CRC32 of the *intended* bytes is recorded before the physical
        write, so a torn or corrupted write is caught by the checksum
        verification of a later read.
        """
        self._check_open()
        self._check_page(page_no)
        if len(data) != self.page_size:
            raise DiskError(
                f"write of {len(data)} bytes to device {self.name!r} with "
                f"page size {self.page_size}"
            )
        payload = bytes(data)
        self._checksums[page_no] = zlib.crc32(payload)
        if self.injector is None:
            self._account(page_no, is_write=True)
            self._write_raw(page_no, payload)
            return
        self._retry_transfer(self._write_attempt, page_no, payload)

    # -- fault application and defenses -----------------------------------

    def _retry_transfer(self, attempt, page_no: int, *args):
        """Run one transfer attempt under the retry policy.

        Transient :class:`~repro.errors.DiskFaultError`\\ s and
        :class:`~repro.errors.ChecksumError`\\ s (which a re-read of an
        intact stored image heals) are retried with capped exponential
        backoff; permanent faults propagate immediately.  Every retry
        re-enters ``attempt`` and therefore :meth:`_account`, so
        retried transfers are real, metered I/O.
        """
        policy = self.retry_policy
        failures = 0
        while True:
            try:
                return attempt(page_no, *args)
            except (DiskFaultError, ChecksumError) as exc:
                if isinstance(exc, DiskFaultError) and not exc.transient:
                    raise
                failures += 1
                if failures >= policy.max_attempts:
                    raise
                wait = policy.backoff_ms(failures)
                self.fault_stats.retries += 1
                self.fault_stats.backoff_ms += wait
                self.backoff_clock.wait(wait)

    def _read_attempt(self, page_no: int) -> bytearray:
        """One fault-checked read: consult the injector, transfer, verify."""
        fault = self.injector.on_disk_op(self.name, page_no, "read", self.page_size)
        if fault is not None:
            self._raise_or_delay(fault, "read", page_no)
        self._account(page_no, is_write=False)
        data = self._read_raw(page_no)
        if fault is not None and fault.kind == "corrupt":
            self.fault_stats.corruptions += 1
            if fault.rule.persistent:
                # Corrupt the stored image: every later read (including
                # retries) sees the flipped bit, so the checksum failure
                # cannot be healed by re-reading.
                stored = _flip_bit(bytes(data), fault.bit)
                self._write_raw(page_no, stored)
                data = bytearray(stored)
            else:
                # Corrupt only this transfer's copy; a retry re-reads
                # the intact stored image and heals.
                data = bytearray(_flip_bit(bytes(data), fault.bit))
        self._verify_checksum(page_no, data)
        return data

    def _write_attempt(self, page_no: int, payload: bytes) -> None:
        """One fault-checked write: consult the injector, transfer."""
        fault = self.injector.on_disk_op(self.name, page_no, "write", self.page_size)
        if fault is not None:
            self._raise_or_delay(fault, "write", page_no)
        self._account(page_no, is_write=True)
        if fault is not None and fault.kind == "torn":
            # The device acknowledged the write but only the first half
            # reached the platter.  The sidecar already holds the CRC of
            # the intended bytes, so the next read raises ChecksumError.
            half = self.page_size // 2
            self._write_raw(page_no, payload[:half] + bytes(self.page_size - half))
            self.fault_stats.torn_writes += 1
            return
        if fault is not None and fault.kind == "corrupt":
            # Silent write-path corruption of the stored image.
            self._write_raw(page_no, _flip_bit(payload, fault.bit))
            self.fault_stats.corruptions += 1
            return
        self._write_raw(page_no, payload)

    def _raise_or_delay(self, fault: "_DiskFault", op: str, page_no: int) -> None:
        """Apply the error / latency half of an injected fault.

        ``transient`` and ``permanent`` faults abort the attempt
        *before* accounting -- a failed transfer never reached the
        device, so it must not appear in the Table 3 meters (the
        retried attempt that eventually succeeds is accounted
        normally).  ``latency`` accumulates model delay on the fault
        stats and lets the transfer proceed.
        """
        self.fault_stats.faults_injected += 1
        if fault.kind == "transient":
            self.fault_stats.transient_faults += 1
            raise DiskFaultError(
                f"injected transient fault: {op} of page {page_no} on "
                f"device {self.name!r}",
                transient=True,
            )
        if fault.kind == "permanent":
            self.fault_stats.permanent_faults += 1
            raise DiskFaultError(
                f"injected permanent fault: {op} of page {page_no} on "
                f"device {self.name!r}",
                transient=False,
            )
        if fault.kind == "latency":
            self.fault_stats.latency_ms += fault.latency_ms

    def _verify_checksum(self, page_no: int, data: bytearray) -> None:
        """Raise :class:`~repro.errors.ChecksumError` on a CRC mismatch.

        Pages written before checksumming existed (or created by
        :meth:`_grow`) carry no sidecar entry and are not checked.
        """
        expected = self._checksums.get(page_no)
        if expected is None:
            return
        actual = zlib.crc32(data)
        if actual != expected:
            self.fault_stats.checksum_failures += 1
            raise ChecksumError(
                f"checksum mismatch on device {self.name!r} page {page_no}: "
                f"stored 0x{expected:08x}, read 0x{actual:08x}"
            )

    def _account(self, page_no: int, is_write: bool) -> None:
        """The one shared accounting/classification path.

        Every physical transfer of every device passes through here
        into :meth:`~repro.storage.stats.IoStatistics.record_transfer`,
        which classifies it as sequential or seek and (when tracing is
        on) emits one :class:`repro.obs.iotrace.IoEvent`.
        """
        self.stats.record_transfer(self.name, page_no, self.page_size, is_write)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the device; further use raises :class:`DiskError`."""
        if not self._closed:
            self._release()
            self._free.clear()
            self._free_set.clear()
            self._checksums.clear()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise DiskError(f"device {self.name!r} is closed")

    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self._capacity():
            raise DiskError(
                f"page {page_no} out of range on device {self.name!r} "
                f"({self._capacity()} pages)"
            )
        if page_no in self._free_set:
            raise DiskError(f"page {page_no} on device {self.name!r} is free")

    # -- physical-storage hooks (subclass responsibilities) ---------------

    def _capacity(self) -> int:
        """Pages ever allocated (live plus freed)."""
        raise NotImplementedError

    def _grow(self, pages: int) -> int:
        """Extend the device by ``pages`` zeroed pages; return the first
        new page number."""
        raise NotImplementedError

    def _read_raw(self, page_no: int) -> bytearray:
        """Fetch one page's bytes (a copy), without accounting."""
        raise NotImplementedError

    def _write_raw(self, page_no: int, data: bytes) -> None:
        """Store one page's bytes, without accounting."""
        raise NotImplementedError

    def _release(self) -> None:
        """Free the physical backing (called once, from :meth:`close`)."""
        raise NotImplementedError
