"""Relational model and in-memory algebra.

This package provides the data model every other layer is built on:

* :mod:`repro.relalg.schema` -- attributes, types, schemas, and the
  fixed-size binary record codec used by the storage layer,
* :mod:`repro.relalg.tuples` -- positional helpers (projections, key
  extractors) shared by the executor operators,
* :mod:`repro.relalg.relation` -- the :class:`Relation` container with
  bag (multiset) semantics,
* :mod:`repro.relalg.predicates` -- composable selection predicates,
* :mod:`repro.relalg.algebra` -- a small, obviously-correct in-memory
  relational algebra used as the correctness oracle for the storage-
  backed operators (in particular the algebraic identity for division).
"""

from repro.relalg.schema import Attribute, DataType, RecordCodec, Schema
from repro.relalg.relation import Relation
from repro.relalg.predicates import (
    AndPredicate,
    AttributeEquals,
    AttributeIn,
    ComparisonPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    TruePredicate,
)
from repro.relalg import algebra

__all__ = [
    "Attribute",
    "DataType",
    "RecordCodec",
    "Schema",
    "Relation",
    "Predicate",
    "TruePredicate",
    "AttributeEquals",
    "AttributeIn",
    "ComparisonPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "algebra",
]
