"""A small, obviously-correct in-memory relational algebra.

These functions exist as the *correctness oracle* for the metered,
storage-backed algorithms: every division algorithm in
:mod:`repro.core` is tested against :func:`divide_set_semantics` and
the algebraic identity :func:`divide_by_identity`

    R ÷ S  =  π_q(R) − π_q((π_q(R) × S) − R)

which the paper cites (Section 1) as the classical — and impractically
expensive — reduction of division to the basic operators.  None of
these functions meter cost; they are pure set/bag computations.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DivisionError, SchemaError
from repro.relalg.predicates import Predicate
from repro.relalg.relation import Relation
from repro.relalg.tuples import projector


def select(relation: Relation, predicate: Predicate, name: str = "") -> Relation:
    """σ: keep the rows satisfying ``predicate``."""
    test = predicate.compile(relation.schema)
    return relation.filter(test, name=name)


def project(
    relation: Relation,
    names: Sequence[str],
    distinct: bool = True,
    name: str = "",
) -> Relation:
    """π: keep only the attributes in ``names``.

    With ``distinct=True`` (the relational default) duplicates created
    by the projection are eliminated; with ``distinct=False`` the bag
    projection is returned, which is what feeds a division algorithm
    that claims to tolerate duplicates.
    """
    schema = relation.schema.project(names)
    extract = projector(relation.schema, names)
    rows = (extract(row) for row in relation)
    if distinct:
        rows = dict.fromkeys(rows)
    return Relation(schema, rows, name=name)


def union(left: Relation, right: Relation, name: str = "") -> Relation:
    """∪ with set semantics (duplicates eliminated)."""
    _require_same_schema(left, right, "union")
    return Relation(
        left.schema, dict.fromkeys(list(left) + list(right)), name=name
    )


def union_all(left: Relation, right: Relation, name: str = "") -> Relation:
    """Bag union (concatenation) -- used by the partitioned division's
    collection phase, which concatenates quotient clusters (§3.4)."""
    _require_same_schema(left, right, "union_all")
    return Relation(left.schema, list(left) + list(right), name=name)


def difference(left: Relation, right: Relation, name: str = "") -> Relation:
    """− with set semantics: distinct rows of ``left`` not in ``right``."""
    _require_same_schema(left, right, "difference")
    exclude = right.as_set()
    return Relation(
        left.schema,
        (row for row in dict.fromkeys(left) if row not in exclude),
        name=name,
    )


def cartesian_product(left: Relation, right: Relation, name: str = "") -> Relation:
    """×: every pairing of a left row with a right row."""
    schema = left.schema.concat(right.schema)
    rows = (l + r for l in left for r in right)
    return Relation(schema, rows, name=name)


def natural_join(left: Relation, right: Relation, name: str = "") -> Relation:
    """⋈ on the commonly named attributes (hash-based, set output)."""
    common = [n for n in left.schema.names if n in right.schema.names]
    if not common:
        return cartesian_product(left, right, name=name)
    right_only = [n for n in right.schema.names if n not in common]
    schema = left.schema.concat(right.schema.project(right_only)) if right_only else left.schema
    left_key = projector(left.schema, common)
    right_key = projector(right.schema, common)
    right_rest = (
        projector(right.schema, right_only) if right_only else (lambda row: ())
    )
    table: dict[tuple, list[tuple]] = {}
    for row in right:
        table.setdefault(right_key(row), []).append(right_rest(row))
    rows = (
        l + rest
        for l in left
        for rest in table.get(left_key(l), ())
    )
    return Relation(schema, dict.fromkeys(rows), name=name)


def semi_join(left: Relation, right: Relation, name: str = "") -> Relation:
    """⋉: rows of ``left`` that join with at least one row of ``right``
    on the commonly named attributes (bag semantics on ``left``)."""
    common = [n for n in left.schema.names if n in right.schema.names]
    if not common:
        raise SchemaError("semi_join requires at least one common attribute")
    left_key = projector(left.schema, common)
    right_key = projector(right.schema, common)
    keys = {right_key(row) for row in right}
    return Relation(
        left.schema, (row for row in left if left_key(row) in keys), name=name
    )


def divide_set_semantics(
    dividend: Relation,
    divisor: Relation,
    name: str = "quotient",
) -> Relation:
    """R ÷ S computed directly from the definition (the primary oracle).

    A quotient tuple ``q`` qualifies iff for *every* divisor tuple
    ``s``, the combined tuple ``(q, s)`` appears in the dividend.
    Duplicates in either input are ignored, matching hash-division's
    semantics.  An empty divisor yields all (distinct) quotient-side
    projections of the dividend, the standard convention: the
    universal quantifier over an empty set is vacuously true.
    """
    quotient_names, divisor_names = division_attribute_split(dividend, divisor)
    quotient_of = projector(dividend.schema, quotient_names)
    divisor_of = projector(dividend.schema, divisor_names)
    required = {tuple(row) for row in divisor}
    seen: dict[tuple, set] = {}
    order: list[tuple] = []
    for row in dividend:
        q = quotient_of(row)
        if q not in seen:
            seen[q] = set()
            order.append(q)
        d = divisor_of(row)
        if d in required:
            seen[q].add(d)
    schema = dividend.schema.project(quotient_names)
    rows = (q for q in order if seen[q] == required)
    return Relation(schema, rows, name=name)


def divide_by_identity(
    dividend: Relation,
    divisor: Relation,
    name: str = "quotient",
) -> Relation:
    """R ÷ S via the algebraic identity π_q(R) − π_q((π_q(R) × S) − R).

    This is the Cartesian-product formulation the paper dismisses as
    "of merely theoretical validity" (Section 1).  It is implemented
    here — at its full quadratic cost — both as an independent oracle
    and to let the benchmarks demonstrate *why* it is impractical.

    The identity is evaluated under set semantics, so both inputs are
    deduplicated first; the subtraction ``× S) − R`` must compare
    attribute-for-attribute, so the product is re-ordered into the
    dividend's attribute order before subtracting.
    """
    quotient_names, divisor_names = division_attribute_split(dividend, divisor)
    candidates = project(dividend, quotient_names, distinct=True)
    divisor_distinct = Relation(
        dividend.schema.project(divisor_names), dict.fromkeys(divisor)
    )
    product = cartesian_product(candidates, divisor_distinct)
    aligned = project(product, dividend.schema.names, distinct=True)
    dividend_distinct = dividend.distinct()
    missing = difference(aligned, dividend_distinct)
    disqualified = project(missing, quotient_names, distinct=True)
    return difference(candidates, disqualified, name=name)


def division_attribute_split(
    dividend: Relation, divisor: Relation
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Validate a division and split the dividend attributes.

    Returns ``(quotient_names, divisor_names)`` where ``divisor_names``
    are the divisor's attributes (which must all appear in the
    dividend) and ``quotient_names`` are the remaining dividend
    attributes, in dividend-schema order.

    Raises:
        DivisionError: if the divisor attributes are not a non-empty
            proper subset of the dividend attributes.
    """
    divisor_names = divisor.schema.names
    dividend_names = dividend.schema.names
    missing = [n for n in divisor_names if n not in dividend_names]
    if missing:
        raise DivisionError(
            f"divisor attributes {missing} do not appear in the dividend "
            f"schema {dividend_names}"
        )
    quotient_names = tuple(n for n in dividend_names if n not in set(divisor_names))
    if not quotient_names:
        raise DivisionError(
            "division requires at least one quotient attribute; the divisor "
            "covers every dividend attribute"
        )
    return quotient_names, divisor_names


def _require_same_schema(left: Relation, right: Relation, op: str) -> None:
    if left.schema != right.schema:
        raise SchemaError(
            f"{op} requires identical schemas, got {left.schema!r} and {right.schema!r}"
        )
