"""Positional tuple helpers shared by the executor operators.

Query-evaluation operators work on plain Python tuples plus a schema
that maps names to positions.  The helpers here pre-resolve names to
positions once, at operator-open time, so the per-tuple hot paths do no
dictionary lookups -- mirroring how the paper's system compiled
"functions on data records ... prior to execution" (Section 5.1).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.relalg.schema import Schema

Row = tuple
"""A relational tuple: a plain, immutable Python tuple of values."""

KeyFunction = Callable[[Row], tuple]
"""Extracts a (hashable, orderable) key from a row."""


def projector(schema: Schema, names: Sequence[str]) -> KeyFunction:
    """Compile a projection of ``schema`` onto ``names``.

    The returned callable maps a row to the tuple of values at the
    positions of ``names`` (in the order given).  Name resolution
    happens once, here.
    """
    positions = schema.positions_of(names)
    if positions == tuple(range(len(schema))):
        return _identity
    if len(positions) == 1:
        only = positions[0]
        return lambda row: (row[only],)
    return lambda row, _p=positions: tuple(row[i] for i in _p)


def _identity(row: Row) -> Row:
    return row


def key_extractor(schema: Schema, names: Sequence[str]) -> KeyFunction:
    """Alias of :func:`projector`; reads better at call sites that use
    the result as a sort or hash key rather than as output."""
    return projector(schema, names)


def composite_key(primary: KeyFunction, secondary: KeyFunction) -> KeyFunction:
    """Compose two key extractors into one (major key, minor key).

    The naive division algorithm sorts the dividend on the quotient
    attributes as major and the divisor attributes as minor sort key
    (Section 2.1); this builds exactly that compound key.
    """
    return lambda row: primary(row) + secondary(row)


def concat_rows(left: Row, right: Row) -> Row:
    """Concatenate two rows (Cartesian product / join output shape)."""
    return left + right


def rows_equal_on(
    schema_a: Schema,
    schema_b: Schema,
    names: Sequence[str],
) -> Callable[[Row, Row], bool]:
    """Compile an equality test between rows of two schemas on the
    commonly named attributes ``names``."""
    positions_a = schema_a.positions_of(names)
    positions_b = schema_b.positions_of(names)

    def equal(row_a: Row, row_b: Row) -> bool:
        return all(row_a[i] == row_b[j] for i, j in zip(positions_a, positions_b))

    return equal
