"""Composable selection predicates.

A :class:`Predicate` is compiled against a schema once (resolving
attribute names to positions) and then evaluated per row.  The paper's
second running example restricts the divisor with a prior selection
("courses whose title contains 'database'"); predicates are how that
restriction is expressed in this library.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import SchemaError
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row

RowTest = Callable[[Row], bool]

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base class: a boolean condition over rows of some schema."""

    def compile(self, schema: Schema) -> RowTest:
        """Resolve attribute names against ``schema`` and return a fast
        per-row test function."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate(self, other)

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Accepts every row; the default for unrestricted scans."""

    def compile(self, schema: Schema) -> RowTest:
        return lambda row: True


@dataclass(frozen=True)
class AttributeEquals(Predicate):
    """``attribute == constant``."""

    attribute: str
    value: Any

    def compile(self, schema: Schema) -> RowTest:
        position = schema.position_of(self.attribute)
        value = self.value
        return lambda row: row[position] == value


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """``attribute <op> constant`` for ``op`` in ==, !=, <, <=, >, >=."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise SchemaError(
                f"unknown comparison operator {self.op!r}; "
                f"expected one of {sorted(_OPERATORS)}"
            )

    def compile(self, schema: Schema) -> RowTest:
        position = schema.position_of(self.attribute)
        compare = _OPERATORS[self.op]
        value = self.value
        return lambda row: compare(row[position], value)


@dataclass(frozen=True)
class AttributeContains(Predicate):
    """``substring in attribute`` -- the paper's "title contains
    'database'" restriction on the divisor (Section 2)."""

    attribute: str
    substring: str

    def compile(self, schema: Schema) -> RowTest:
        position = schema.position_of(self.attribute)
        needle = self.substring
        return lambda row: needle in row[position]


class AttributeIn(Predicate):
    """``attribute IN constants`` (membership in a literal set)."""

    def __init__(self, attribute: str, values: Iterable[Any]) -> None:
        self.attribute = attribute
        self.values = frozenset(values)

    def compile(self, schema: Schema) -> RowTest:
        position = schema.position_of(self.attribute)
        values = self.values
        return lambda row: row[position] in values

    def __repr__(self) -> str:
        return f"AttributeIn({self.attribute!r}, {sorted(self.values)!r})"


@dataclass(frozen=True)
class AndPredicate(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def compile(self, schema: Schema) -> RowTest:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: left(row) and right(row)


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def compile(self, schema: Schema) -> RowTest:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: left(row) or right(row)


@dataclass(frozen=True)
class NotPredicate(Predicate):
    """Negation of a predicate."""

    inner: Predicate

    def compile(self, schema: Schema) -> RowTest:
        inner = self.inner.compile(schema)
        return lambda row: not inner(row)
