"""The :class:`Relation` container.

A relation is a schema plus a *bag* (multiset) of tuples.  Bag
semantics matter for this paper: three of the four division algorithms
require duplicate-free inputs, while hash-division tolerates duplicates
in both inputs (Section 3.3).  Keeping duplicates representable lets
the test suite exercise exactly those claims.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row, projector


class Relation:
    """A named bag of tuples conforming to one schema.

    The container is deliberately simple -- a list of tuples -- because
    the interesting physical behaviour (pages, buffering, I/O) lives in
    :mod:`repro.storage`.  ``Relation`` is the boundary type users hand
    to :func:`repro.divide` and get back from it.
    """

    __slots__ = ("schema", "name", "_rows")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row] = (),
        name: str = "",
    ) -> None:
        self.schema = schema
        self.name = name
        self._rows: list[Row] = []
        arity = len(schema)
        for row in rows:
            if len(row) != arity:
                raise SchemaError(
                    f"row {row!r} has arity {len(row)}, schema expects {arity}"
                )
            self._rows.append(tuple(row))

    @classmethod
    def of_ints(cls, names: Sequence[str], rows: Iterable[Row], name: str = "") -> "Relation":
        """Build an all-integer relation -- the paper's record shape."""
        return cls(Schema.of_ints(*names), rows, name=name)

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __repr__(self) -> str:
        label = self.name or "Relation"
        return f"<{label} {self.schema!r} with {len(self)} tuples>"

    # -- content access ------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        """The tuples, in insertion order (a live list; treat as read-only)."""
        return self._rows

    def append(self, row: Row) -> None:
        """Add one tuple (arity-checked)."""
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row {row!r} has arity {len(row)}, schema expects {len(self.schema)}"
            )
        self._rows.append(tuple(row))

    def extend(self, rows: Iterable[Row]) -> None:
        """Add several tuples (arity-checked)."""
        for row in rows:
            self.append(row)

    def column(self, name: str) -> list[Any]:
        """All values of one attribute, in row order."""
        position = self.schema.position_of(name)
        return [row[position] for row in self._rows]

    # -- bag/set comparisons --------------------------------------------

    def as_bag(self) -> Counter:
        """Multiset view of the tuples (for order-insensitive equality)."""
        return Counter(self._rows)

    def as_set(self) -> frozenset:
        """Set view of the tuples, discarding multiplicity."""
        return frozenset(self._rows)

    def bag_equal(self, other: "Relation") -> bool:
        """True when both relations hold the same tuples with the same
        multiplicities (order-insensitive)."""
        return self.schema == other.schema and self.as_bag() == other.as_bag()

    def set_equal(self, other: "Relation") -> bool:
        """True when both relations hold the same distinct tuples."""
        return self.schema == other.schema and self.as_set() == other.as_set()

    def has_duplicates(self) -> bool:
        """True when at least one tuple occurs more than once."""
        return len(self._rows) != len(set(self._rows))

    # -- convenience transformations -------------------------------------

    def distinct(self, name: str = "") -> "Relation":
        """A duplicate-free copy, preserving first-occurrence order."""
        return Relation(
            self.schema, dict.fromkeys(self._rows), name=name or self.name
        )

    def sorted_by(self, names: Sequence[str], name: str = "") -> "Relation":
        """A copy sorted on ``names`` (ascending, stable).

        This is the *logical* sort used by oracles and tests; the
        metered external sort lives in :mod:`repro.executor.sort`.
        """
        key = projector(self.schema, names)
        return Relation(self.schema, sorted(self._rows, key=key), name=name or self.name)

    def filter(self, keep: Callable[[Row], bool], name: str = "") -> "Relation":
        """A copy holding only the rows for which ``keep`` is true."""
        return Relation(
            self.schema, (row for row in self._rows if keep(row)), name=name
        )

    def rename(self, name: str) -> "Relation":
        """The same relation under a new name (shares the row list)."""
        renamed = Relation(self.schema, (), name=name)
        renamed._rows = self._rows
        return renamed
