"""Schemas, attribute types, and the fixed-size record codec.

The paper's experiments use fixed-size records: 8 bytes for divisor and
quotient tuples, 16 bytes for dividend tuples (Section 5.1).  This
module models schemas as ordered sequences of typed attributes and
provides :class:`RecordCodec`, which packs a Python tuple into exactly
the byte layout a schema prescribes, so the storage layer stores the
same record sizes the paper's file system did.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Attribute types supported by the record codec.

    ``INT64`` is an 8-byte signed integer, ``FLOAT64`` an 8-byte IEEE
    double, and ``STRING`` a fixed-width byte string whose width is
    carried by the :class:`Attribute` (``size`` field).
    """

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"


@dataclass(frozen=True)
class Attribute:
    """A named, typed column.

    Args:
        name: Column name, unique within a schema.
        dtype: Value type.
        size: Byte width; required only for ``STRING`` attributes.
              ``INT64`` and ``FLOAT64`` are always 8 bytes.
    """

    name: str
    dtype: DataType = DataType.INT64
    size: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.dtype in (DataType.INT64, DataType.FLOAT64) and self.size != 8:
            raise SchemaError(
                f"attribute {self.name!r}: {self.dtype.value} is always 8 bytes, "
                f"got size={self.size}"
            )
        if self.dtype is DataType.STRING and self.size <= 0:
            raise SchemaError(
                f"attribute {self.name!r}: string attributes need a positive size"
            )

    @property
    def struct_format(self) -> str:
        """The ``struct`` format fragment encoding this attribute."""
        if self.dtype is DataType.INT64:
            return "q"
        if self.dtype is DataType.FLOAT64:
            return "d"
        return f"{self.size}s"


class Schema:
    """An ordered, immutable sequence of uniquely named attributes.

    A schema maps attribute names to positions and exposes convenience
    constructors for the projections the division operator needs
    (quotient attributes, divisor attributes).
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            index[attribute.name] = position
        self._attributes = attrs
        self._index = index

    @classmethod
    def of_ints(cls, *names: str) -> "Schema":
        """Build a schema of 8-byte integer attributes -- the record
        shape used throughout the paper's experiments."""
        return cls(Attribute(name) for name in names)

    # -- basic container protocol ------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, item: int | str) -> Attribute:
        if isinstance(item, str):
            return self._attributes[self.position_of(item)]
        return self._attributes[item]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.dtype.value}" for a in self._attributes)
        return f"Schema({cols})"

    # -- name/position mapping ---------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self._attributes)

    def position_of(self, name: str) -> int:
        """Return the position of ``name``, raising
        :class:`~repro.errors.SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"attribute {name!r} not in schema {self.names}"
            ) from None

    def positions_of(self, names: Sequence[str]) -> tuple[int, ...]:
        """Return positions for several names, preserving their order."""
        return tuple(self.position_of(name) for name in names)

    # -- derived schemas ----------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection onto ``names`` (in the given order)."""
        return Schema(self[name] for name in names)

    def complement(self, names: Sequence[str]) -> "Schema":
        """Schema of the attributes *not* in ``names``, in schema order.

        For a division ``R(quotient ∪ divisor) ÷ S(divisor)``, the
        quotient schema is ``R.schema.complement(S.schema.names)``.
        """
        excluded = set(names)
        missing = excluded - set(self.names)
        if missing:
            raise SchemaError(f"attributes {sorted(missing)} not in schema {self.names}")
        remaining = [a for a in self._attributes if a.name not in excluded]
        if not remaining:
            raise SchemaError("complement would produce an empty schema")
        return Schema(remaining)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of two tuples (Cartesian product)."""
        return Schema(tuple(self._attributes) + tuple(other._attributes))

    # -- physical layout ----------------------------------------------

    @property
    def record_size(self) -> int:
        """Fixed record size in bytes for tuples of this schema."""
        return sum(a.size for a in self._attributes)

    def codec(self) -> "RecordCodec":
        """Return a codec that (de)serializes tuples of this schema."""
        return RecordCodec(self)


class RecordCodec:
    """Fixed-size binary (de)serializer for tuples of one schema.

    Records are packed with ``struct`` using little-endian layout and
    no padding, so a divisor schema of one ``INT64`` yields exactly the
    paper's 8-byte records and a two-integer dividend schema yields
    16-byte records.
    """

    __slots__ = ("schema", "_struct", "_string_positions")

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        fmt = "<" + "".join(a.struct_format for a in schema)
        self._struct = struct.Struct(fmt)
        self._string_positions = tuple(
            i for i, a in enumerate(schema) if a.dtype is DataType.STRING
        )

    @property
    def record_size(self) -> int:
        """Bytes per encoded record."""
        return self._struct.size

    def encode(self, row: tuple) -> bytes:
        """Pack one tuple into its fixed-size binary record."""
        if len(row) != len(self.schema):
            raise SchemaError(
                f"tuple arity {len(row)} does not match schema arity {len(self.schema)}"
            )
        if not self._string_positions:
            return self._struct.pack(*row)
        values = list(row)
        for position in self._string_positions:
            value = values[position]
            if isinstance(value, str):
                value = value.encode("utf-8")
            values[position] = value
        return self._struct.pack(*values)

    def decode(self, record: bytes | memoryview) -> tuple:
        """Unpack one binary record back into a Python tuple.

        String attributes are returned stripped of NUL padding and
        decoded as UTF-8.
        """
        values = self._struct.unpack(record)
        if not self._string_positions:
            return values
        out = list(values)
        for position in self._string_positions:
            out[position] = out[position].rstrip(b"\x00").decode("utf-8")
        return tuple(out)
